package relation

// The mutation journal turns a Relation into a stream of typed deltas.
// Inserts, deletes and Set calls notify every subscriber synchronously,
// after the relation's own bookkeeping (tuple table, interned ids, active
// domains) is consistent with the new state. Subscribers see mutations in
// program order; there is no buffering and no goroutine hand-off, so a
// subscriber's view is never stale. This is the substrate that lets
// violation state be *maintained* under deltas instead of recomputed from
// scratch: the detection layer subscribes once and pays O(|Δ|) per
// mutation, never O(|D|).

// DeltaKind discriminates the three mutation deltas a Relation emits.
type DeltaKind uint8

const (
	// DeltaInsert reports a tuple added to the relation.
	DeltaInsert DeltaKind = iota
	// DeltaDelete reports a tuple removed from the relation. The Tuple in
	// the delta is no longer owned by the relation, but its values and
	// interned ids still reflect its state at removal time.
	DeltaDelete
	// DeltaUpdate reports one attribute of a tuple changed via Set. The
	// Tuple already carries the new value; Old and OldID preserve the
	// replaced value so subscribers can locate state keyed on it.
	DeltaUpdate
)

// Delta is one relation mutation, emitted after the fact.
type Delta struct {
	Kind DeltaKind
	T    *Tuple
	// Attr, Old and OldID are meaningful for DeltaUpdate only: the changed
	// attribute position, its previous value, and the previous interned id.
	Attr  int
	Old   Value
	OldID ValueID
}

// Subscribe registers fn to observe every subsequent mutation of the
// relation and returns a function that removes the subscription.
// Subscribers are notified synchronously in subscription order, after the
// relation's own state is updated; fn must not mutate the relation.
func (r *Relation) Subscribe(fn func(Delta)) (unsubscribe func()) {
	id := r.nextSub
	r.nextSub++
	r.subs = append(r.subs, subscriber{id: id, fn: fn})
	return func() {
		for i, s := range r.subs {
			if s.id == id {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				return
			}
		}
	}
}

type subscriber struct {
	id int
	fn func(Delta)
}

func (r *Relation) notify(d Delta) {
	for _, s := range r.subs {
		s.fn(d)
	}
}

// NextID returns the id the next Insert of an id-less tuple would be
// assigned. Together with RestoreNextID it lets callers run apply/undo
// probes — insert scratch tuples, observe maintained state, delete them —
// without permanently advancing the id sequence. NextID also serves as
// the journal's insertion watermark: two states with equal NextID have
// seen the same id-assigning history, which is what lets a streaming
// session name its published snapshots (see increpair.Snapshot).
func (r *Relation) NextID() TupleID { return r.nextID }

// Version returns the journal's mutation counter: the total number of
// Insert, Delete and effective Set calls the relation has seen. Unlike
// NextID — which only advances on inserts — Version changes on *every*
// mutation, so two reads observing the same Version are guaranteed to
// have seen the identical relation state. It is the cheap freshness
// token behind lock-free snapshot publication: a writer stamps each
// published snapshot with (NextID, Version), and a reader comparing two
// snapshot versions knows whether anything at all happened in between.
func (r *Relation) Version() uint64 { return r.version }

// RestoreJournalMarks overwrites the journal's id watermark and mutation
// counter with values recorded from another relation's journal. It is
// the crash-recovery hook: a relation rebuilt from a persisted snapshot
// (internal/wal) re-inserts the surviving tuples, which leaves nextID at
// max(id)+1 and version at the tuple count — but the pre-crash journal
// may have advanced further (deleted high ids, update and probe
// mutations). Restoring both marks makes the rebuilt journal
// indistinguishable from the original at the snapshot point, so replayed
// WAL batches assign the same ids and land on the same Version cursor.
// nextID only moves forward (an id below a live tuple's would corrupt
// the relation); version is overwritten as given.
func (r *Relation) RestoreJournalMarks(nextID TupleID, version uint64) {
	if nextID > r.nextID {
		r.nextID = nextID
	}
	r.version = version
}

// RestoreNextID rewinds the id counter to a value previously obtained
// from NextID. The caller must have deleted every tuple inserted since
// the mark; otherwise future ids would collide. Insert still bumps the
// counter past any explicit id, so a stale mark degrades to a no-op
// rather than corrupting the relation.
func (r *Relation) RestoreNextID(mark TupleID) {
	if mark < r.nextID {
		r.nextID = mark
	}
}
