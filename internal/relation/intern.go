package relation

import (
	"encoding/binary"
	"sync"
)

// ValueID is a dense interned identifier for a Value within one Dict.
// ID 0 is reserved for SQL null; InvalidID marks "not interned", so probe
// paths can encode "this constant appears nowhere in the dictionary"
// without touching the strings themselves. All equality of interned values
// is O(1) integer comparison.
type ValueID uint32

const (
	// NullID is the reserved interned id of SQL null.
	NullID ValueID = 0
	// InvalidID is returned by lookups for constants absent from the
	// dictionary. It is never assigned to a real value, so composite keys
	// built from it match nothing.
	InvalidID ValueID = ^ValueID(0)
)

// Dict is an interning dictionary mapping each distinct string constant to
// a dense ValueID. A Dict only grows: ids stay valid for the lifetime of
// the dictionary (and of its clones), even after every tuple carrying the
// value is deleted. Dict is safe for concurrent use: building a Detector
// interns pattern constants into the relation's dictionary, so independent
// read-only queries (Satisfies, Detect, ...) may race on it otherwise.
// The hot scan paths never touch the dictionary — relation-owned tuples
// carry their ids — so the lock only guards scratch-probe lookups and
// interning.
type Dict struct {
	mu    sync.RWMutex
	byStr map[string]ValueID
	strs  []string // strs[id]; strs[0] is the null placeholder
}

// NewDict returns an empty dictionary with the null id reserved.
func NewDict() *Dict {
	return &Dict{
		byStr: make(map[string]ValueID),
		strs:  []string{""},
	}
}

// InternStr returns the id of constant s, assigning the next dense id on
// first sight.
func (d *Dict) InternStr(s string) ValueID {
	d.mu.RLock()
	id, ok := d.byStr[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byStr[s]; ok {
		return id
	}
	id = ValueID(len(d.strs))
	d.strs = append(d.strs, s)
	d.byStr[s] = id
	return id
}

// Intern returns the id of v: NullID for null, InternStr otherwise.
func (d *Dict) Intern(v Value) ValueID {
	if v.Null {
		return NullID
	}
	return d.InternStr(v.Str)
}

// LookupStr returns the id of constant s without interning; ok is false
// (and the id InvalidID) when s has never been seen.
func (d *Dict) LookupStr(s string) (ValueID, bool) {
	d.mu.RLock()
	id, ok := d.byStr[s]
	d.mu.RUnlock()
	if ok {
		return id, true
	}
	return InvalidID, false
}

// LookupValue returns the id of v without interning: NullID for null,
// InvalidID for unseen constants.
func (d *Dict) LookupValue(v Value) ValueID {
	if v.Null {
		return NullID
	}
	id, _ := d.LookupStr(v.Str)
	return id
}

// Value resolves an id back to its Value. NullID yields the null value.
func (d *Dict) Value(id ValueID) Value {
	if id == NullID {
		return NullValue
	}
	return Value{Str: d.Str(id)}
}

// Str resolves a non-null id to its constant.
func (d *Dict) Str(id ValueID) string {
	d.mu.RLock()
	s := d.strs[id]
	d.mu.RUnlock()
	return s
}

// StringsFrom returns the constants with non-null ordinal in [start, end):
// ordinal 0 is the first interned constant (ValueID 1). The slice is a
// copy, safe to hold while the dictionary keeps growing. Used by the disk
// store to flush dictionary deltas: because a Dict only grows and assigns
// ids densely in intern order, persisting the entries in ordinal order is
// enough to reproduce identical ids on reload.
func (d *Dict) StringsFrom(start, end int) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if start < 0 {
		start = 0
	}
	if end > len(d.strs)-1 {
		end = len(d.strs) - 1
	}
	if start >= end {
		return nil
	}
	return append([]string(nil), d.strs[1+start:1+end]...)
}

// Len returns the number of distinct constants interned (null excluded).
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.strs) - 1
	d.mu.RUnlock()
	return n
}

// Clone copies the dictionary; ids are preserved, so interned tuples of a
// cloned relation keep their ids valid against the cloned dictionary.
func (d *Dict) Clone() *Dict {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c := &Dict{
		byStr: make(map[string]ValueID, len(d.byStr)),
		strs:  append([]string(nil), d.strs...),
	}
	for s, id := range d.byStr {
		c.byStr[s] = id
	}
	return c
}

// Key is a fixed-width composite key over interned value ids, replacing
// the string composite keys (Tuple.KeyOn / KeyOf) on the hot paths. Keys
// over up to four attributes pack exactly into the two machine words; the
// rare wider keys spill the remaining ids into ext, so equality stays
// exact at every arity (no lossy hashing). Key is comparable and is used
// directly as a Go map key.
type Key struct {
	lo, hi uint64
	ext    string
}

// KeyOfIDs packs a sequence of interned ids into a Key. The caller is
// responsible for arity discipline: keys are only comparable within one
// index or bucket family, which always projects a fixed attribute set.
func KeyOfIDs(ids []ValueID) Key {
	var k Key
	switch len(ids) {
	case 0:
	case 1:
		k.lo = uint64(ids[0])
	case 2:
		k.lo = uint64(ids[0]) | uint64(ids[1])<<32
	case 3:
		k.lo = uint64(ids[0]) | uint64(ids[1])<<32
		k.hi = uint64(ids[2])
	case 4:
		k.lo = uint64(ids[0]) | uint64(ids[1])<<32
		k.hi = uint64(ids[2]) | uint64(ids[3])<<32
	default:
		k.lo = uint64(ids[0]) | uint64(ids[1])<<32
		k.hi = uint64(ids[2]) | uint64(ids[3])<<32
		b := make([]byte, 4*(len(ids)-4))
		for i, id := range ids[4:] {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(id))
		}
		k.ext = string(b)
	}
	return k
}

// Hash returns a well-mixed 64-bit hash of the key, used to shard buckets
// across detection workers.
func (k Key) Hash() uint64 {
	h := mix64(k.lo) ^ mix64(k.hi+0x9e3779b97f4a7c15)
	for i := 0; i+4 <= len(k.ext); i += 4 {
		w := uint64(k.ext[i]) | uint64(k.ext[i+1])<<8 |
			uint64(k.ext[i+2])<<16 | uint64(k.ext[i+3])<<24
		h = mix64(h ^ w)
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PairKey packs two interned ids into one uint64, for symmetric or ordered
// pair-keyed memo tables (e.g. the cost model's distance cache).
func PairKey(a, b ValueID) uint64 { return uint64(a)<<32 | uint64(b) }
