package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// NullLiteral is the CSV representation of SQL null. Chosen so it cannot
// collide with ordinary data written by WriteCSV (which escapes nothing;
// callers with literal "\N" data should use a custom codec).
const NullLiteral = `\N`

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the schema (relation name given by name). Fields equal to
// NullLiteral load as null. All tuples get unit weights.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	// Records are copied into Values (and interned by Insert) immediately,
	// so the reader's record slice can be reused across rows.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	schema, err := NewSchema(name, header...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != schema.Arity() {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), schema.Arity())
		}
		vals := make([]Value, len(rec))
		for i, f := range rec {
			if f == NullLiteral {
				vals[i] = NullValue
			} else {
				vals[i] = S(f)
			}
		}
		if err := rel.Insert(&Tuple{Vals: vals}); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row. Null values are
// written as NullLiteral. It shares its row codec with the streaming
// CSVEncoder (cursor.go), so a pinned View.WriteCSV at the same version
// is byte-identical.
func WriteCSV(rel *Relation, w io.Writer) error {
	enc, err := NewCSVEncoder(w, rel.Schema())
	if err != nil {
		return err
	}
	for _, t := range rel.Tuples() {
		if err := enc.Write(t); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// WriteWeightsCSV writes the per-attribute confidence weights as a CSV
// parallel to WriteCSV: header row, then one row per tuple with weights
// formatted at full precision. Tuples without weights write 1 everywhere.
func WriteWeightsCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Attrs()); err != nil {
		return fmt.Errorf("relation: writing weights header: %w", err)
	}
	rec := make([]string, rel.Schema().Arity())
	for _, t := range rel.Tuples() {
		for i := range rec {
			rec[i] = strconv.FormatFloat(t.Weight(i), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing weights for tuple %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadWeightsCSV attaches weights from a CSV produced by WriteWeightsCSV
// to the tuples of rel, in order. The header must match the schema.
func ReadWeightsCSV(rel *Relation, r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("relation: reading weights header: %w", err)
	}
	if len(header) != rel.Schema().Arity() {
		return fmt.Errorf("relation: weights header has %d fields, want %d", len(header), rel.Schema().Arity())
	}
	for i, h := range header {
		if rel.Schema().Attr(i) != h {
			return fmt.Errorf("relation: weights header %q at position %d, want %q", h, i, rel.Schema().Attr(i))
		}
	}
	tuples := rel.Tuples()
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			if i != len(tuples) {
				return fmt.Errorf("relation: weights CSV has %d rows, relation has %d tuples", i, len(tuples))
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("relation: reading weights row %d: %w", i+2, err)
		}
		if i >= len(tuples) {
			return fmt.Errorf("relation: weights CSV has more rows than the relation's %d tuples", len(tuples))
		}
		if len(rec) != rel.Schema().Arity() {
			return fmt.Errorf("relation: weights row %d has %d fields, want %d", i+2, len(rec), rel.Schema().Arity())
		}
		for a, f := range rec {
			w, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("relation: weights row %d field %d: %w", i+2, a, err)
			}
			if w < 0 || w > 1 {
				return fmt.Errorf("relation: weights row %d field %d: weight %v outside [0,1]", i+2, a, w)
			}
			tuples[i].SetWeight(a, w)
		}
	}
}
