package relation

import (
	"fmt"
	"strings"
)

// TupleID identifies a tuple throughout the repair process, even as its
// attribute values change (the paper's "temporary unique tuple id", §3.1).
type TupleID int64

// Tuple is a weighted data tuple. Vals[i] is the value of attribute i;
// W[i] ∈ [0,1] is the confidence weight the user places in the accuracy
// of that attribute (§3.2). When no weight information is available the
// algorithms treat every weight as 1 (§3.2 remark 1); a nil W means
// exactly that.
type Tuple struct {
	ID   TupleID
	Vals []Value
	W    []float64

	// ids holds the interned ValueID of each attribute value, parallel to
	// Vals. It is owned by the Relation the tuple lives in: Insert fills
	// it against the relation's Dict and Set keeps it in sync. A nil ids
	// marks a free-standing tuple (built by NewTuple/Clone, or a scratch
	// probe whose Vals are mutated directly); such tuples take the
	// value-based slow paths.
	ids []ValueID
}

// NewTuple builds a tuple with unit weights from plain strings.
func NewTuple(id TupleID, vals ...string) *Tuple {
	vs := make([]Value, len(vals))
	for i, s := range vals {
		vs[i] = S(s)
	}
	return &Tuple{ID: id, Vals: vs}
}

// Clone deep-copies the tuple.
func (t *Tuple) Clone() *Tuple {
	c := &Tuple{ID: t.ID, Vals: append([]Value(nil), t.Vals...)}
	if t.W != nil {
		c.W = append([]float64(nil), t.W...)
	}
	return c
}

// Weight returns the confidence weight of attribute i, defaulting to 1
// when no weight vector is attached.
func (t *Tuple) Weight(i int) float64 {
	if t.W == nil {
		return 1
	}
	return t.W[i]
}

// SetWeight records the confidence weight of attribute i, materializing a
// unit-weight vector on first use.
func (t *Tuple) SetWeight(i int, w float64) {
	if t.W == nil {
		t.W = make([]float64, len(t.Vals))
		for j := range t.W {
			t.W[j] = 1
		}
	}
	t.W[i] = w
}

// TotalWeight returns the sum of the attribute weights of t; the paper's
// wt(t), used by W-INCREPAIR to order tuples by trustworthiness (§5.2).
func (t *Tuple) TotalWeight() float64 {
	if t.W == nil {
		return float64(len(t.Vals))
	}
	var s float64
	for _, w := range t.W {
		s += w
	}
	return s
}

// Project returns the values of t at the given attribute positions.
func (t *Tuple) Project(attrs []int) []Value {
	out := make([]Value, len(attrs))
	for i, a := range attrs {
		out[i] = t.Vals[a]
	}
	return out
}

// KeyOn encodes the projection of t onto attrs as a composite map key.
func (t *Tuple) KeyOn(attrs []int) string {
	n := 0
	for _, a := range attrs {
		n += len(t.Vals[a].Str) + 2
	}
	b := make([]byte, 0, n)
	for _, a := range attrs {
		b = append(b, t.Vals[a].Key()...)
	}
	return string(b)
}

// Interned reports whether t carries interned value ids (i.e. it is owned
// by a Relation and its ids are in sync with Vals).
func (t *Tuple) Interned() bool { return t.ids != nil }

// IDAt returns the interned id of attribute a, or InvalidID for a
// free-standing tuple.
func (t *Tuple) IDAt(a int) ValueID {
	if t.ids == nil {
		return InvalidID
	}
	return t.ids[a]
}

// ProjectIDs appends the interned ids of t at attrs to dst and returns it.
// The tuple must be interned.
func (t *Tuple) ProjectIDs(dst []ValueID, attrs []int) []ValueID {
	for _, a := range attrs {
		dst = append(dst, t.ids[a])
	}
	return dst
}

// KeyOnIDs builds the fixed-width integer composite key of t's projection
// onto attrs. The tuple must be interned.
func (t *Tuple) KeyOnIDs(attrs []int) Key {
	var buf [8]ValueID
	return KeyOfIDs(t.ProjectIDs(buf[:0], attrs))
}

// HasNullOn reports whether any of the given attributes of t is null.
func (t *Tuple) HasNullOn(attrs []int) bool {
	for _, a := range attrs {
		if t.Vals[a].Null {
			return true
		}
	}
	return false
}

// String renders the tuple for debugging.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("t%d(%s)", t.ID, strings.Join(parts, ", "))
}
