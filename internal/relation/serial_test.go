package relation

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestDeltaCodecRoundTrip fuzzes AppendDelta/DecodeDelta: every delta
// kind, null and empty values, weight vectors (bit-exact floats), and
// multi-delta buffers with exact consumed-byte accounting.
func TestDeltaCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randVal := func() Value {
		switch rng.Intn(4) {
		case 0:
			return NullValue
		case 1:
			return S("")
		case 2:
			return S("plain")
		default:
			b := make([]byte, rng.Intn(20))
			rng.Read(b)
			return S(string(b))
		}
	}
	randDelta := func() Delta {
		d := Delta{Kind: DeltaKind(rng.Intn(3))}
		tp := &Tuple{ID: TupleID(rng.Int63n(1 << 40))}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			tp.Vals = append(tp.Vals, randVal())
		}
		if tp.Vals != nil && rng.Intn(2) == 0 {
			tp.W = make([]float64, len(tp.Vals))
			for i := range tp.W {
				tp.W[i] = math.Float64frombits(rng.Uint64() &^ (0x7ff << 52)) // finite
			}
		}
		d.T = tp
		d.Attr = rng.Intn(8)
		d.Old = randVal()
		return d
	}

	for trial := 0; trial < 300; trial++ {
		var deltas []Delta
		var buf []byte
		for i, n := 0, rng.Intn(5)+1; i < n; i++ {
			d := randDelta()
			deltas = append(deltas, d)
			buf = AppendDelta(buf, &d)
		}
		pos := 0
		for i, want := range deltas {
			got, n, err := DecodeDelta(buf[pos:])
			if err != nil {
				t.Fatalf("trial %d delta %d: %v", trial, i, err)
			}
			pos += n
			if got.Kind != want.Kind || got.Attr != want.Attr || got.T.ID != want.T.ID {
				t.Fatalf("trial %d delta %d: header mismatch", trial, i)
			}
			if !StrictEq(got.Old, want.Old) || !StrictEqVals(got.T.Vals, want.T.Vals) {
				t.Fatalf("trial %d delta %d: values mismatch", trial, i)
			}
			if !reflect.DeepEqual(got.T.W, want.T.W) {
				t.Fatalf("trial %d delta %d: weights mismatch: %v != %v", trial, i, got.T.W, want.T.W)
			}
			if got.T.Interned() {
				t.Fatalf("trial %d delta %d: decoded tuple claims interned ids", trial, i)
			}
			if got.OldID != InvalidID {
				t.Fatalf("trial %d delta %d: OldID = %d, want InvalidID", trial, i, got.OldID)
			}
		}
		if pos != len(buf) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, pos, len(buf))
		}
		// Every strict prefix must error, never mis-decode as a shorter
		// valid stream of the SAME delta (truncation safety).
		if len(buf) > 1 {
			cut := rng.Intn(len(buf)-1) + 1
			if pos = 0; true {
				ok := true
				for range deltas {
					_, n, err := DecodeDelta(buf[pos:cut])
					if err != nil {
						ok = false
						break
					}
					pos += n
				}
				if ok && pos == cut {
					// Extremely unlikely: a cut landing exactly on a
					// delta boundary is a legitimate shorter stream.
					if cut != len(buf) {
						boundary := false
						q := 0
						for range deltas {
							_, n, _ := DecodeDelta(buf[q:])
							q += n
							if q == cut {
								boundary = true
							}
						}
						if !boundary {
							t.Fatalf("trial %d: truncation at %d decoded cleanly off-boundary", trial, cut)
						}
					}
				}
			}
		}
	}
}

// TestDeltaCodecRejectsGarbage: corrupt headers fail loudly.
func TestDeltaCodecRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"empty":       {},
		"bad-kind":    {9},
		"no-id":       {0},
		"bad-wflag":   append(AppendDelta(nil, &Delta{Kind: DeltaInsert, T: &Tuple{ID: 1}})[:4], 7),
		"huge-nvals":  {0, 2, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"bad-val-tag": {0, 2, 1, 9},
	} {
		if _, _, err := DecodeDelta(b); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
}

// TestRestoreJournalMarks: the recovery hook only advances the id
// watermark (an id below a live tuple's would corrupt the relation) and
// overwrites the version counter.
func TestRestoreJournalMarks(t *testing.T) {
	r := New(MustSchema("R", "a"))
	r.MustInsert(NewTuple(0, "x"))
	r.MustInsert(NewTuple(0, "y"))
	if r.NextID() != 3 || r.Version() != 2 {
		t.Fatalf("setup: nextID=%d version=%d", r.NextID(), r.Version())
	}
	r.RestoreJournalMarks(10, 55)
	if r.NextID() != 10 || r.Version() != 55 {
		t.Fatalf("advance: nextID=%d version=%d", r.NextID(), r.Version())
	}
	r.RestoreJournalMarks(4, 60) // nextID must not rewind
	if r.NextID() != 10 || r.Version() != 60 {
		t.Fatalf("rewind guard: nextID=%d version=%d", r.NextID(), r.Version())
	}
	tp := NewTuple(0, "z")
	r.MustInsert(tp)
	if tp.ID != 10 {
		t.Fatalf("insert after restore got id %d, want 10", tp.ID)
	}
}
