package repair

import (
	"fmt"
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cost"
	"cfdclean/internal/eqclass"
	"cfdclean/internal/relation"
)

// Batch runs algorithm BATCHREPAIR (Fig. 4): given a database d and a set
// sigma of normal-form CFDs, it computes a repair of d satisfying sigma.
// The input database is not modified. Sigma must be satisfiable.
//
// The greedy loop resolves one violation at a time, chosen by PICKNEXT
// as the cheapest available fix under the cost model, acting on
// equivalence classes of tuple attributes rather than on values directly;
// when no dirty tuples remain, classes whose target is still '_' are
// instantiated with least-cost constants, which may surface new
// violations and re-enter the loop (Theorem 4.2 guarantees termination).
//
// Execution is component-parallel (see parallel.go): the loop runs per
// connected component of the violation graph, components are distributed
// across Options.Workers workers with per-worker engine state, and the
// resolved fixes are merged in canonical component order. A residual
// sequential pass resolves anything the merged fixes surface across
// component boundaries, so the result satisfies sigma unconditionally
// and is byte-identical at every worker count.
func Batch(d *relation.Relation, sigma []*cfd.Normal, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	e, err := newEngine(d, sigma, o)
	if err != nil {
		return nil, err
	}
	// Detach the store before handing the repaired relation to the
	// caller, so their later mutations don't pay maintenance.
	defer e.store.Close()
	// Safety bound from the termination argument of Theorem 4.2: the
	// progress measure is bounded by 3k for k = (tuple, attribute) pairs.
	maxSteps := 3*e.rel.Size()*e.rel.Schema().Arity() + 1024
	res := &Result{}
	if comps := e.store.Components(); len(comps) > 0 {
		fixes, st, err := e.runComponents(comps, maxSteps)
		if err != nil {
			return nil, err
		}
		// Merge in canonical component order: components by smallest
		// member, cells by (tuple, attribute) within each. Conflicting
		// writes from cross-component cascades resolve to the later
		// component, deterministically.
		for _, fl := range fixes {
			for _, f := range fl {
				if t := e.rel.Tuple(f.id); t != nil {
					e.setStored(t, f.a, f.v)
				}
			}
		}
		res.Resolutions = st.resolutions
		res.InstantiationRounds = st.rounds
	}
	// Residual pass (sequential, deterministic): the merged component
	// fixes satisfy sigma except when components cascaded into shared
	// clean tuples; whatever the store still reports is re-run through
	// the same loop, seeded from the maintained state.
	if !e.store.Satisfied() {
		e.store.EachViolation(func(gi int, v cfd.Violation) {
			e.dirty[gi][v.T] = true
		})
		before := e.resolutions
		limit := e.resolutions + maxSteps
		for {
			if err := e.mainLoop(limit); err != nil {
				return nil, err
			}
			res.InstantiationRounds++
			if !e.instantiate() {
				break
			}
		}
		res.Resolutions += e.resolutions - before
	}
	repaired := e.rel
	c, err := o.CostModel.Repair(repaired, d)
	if err != nil {
		return nil, err
	}
	res.Repair = repaired
	res.Cost = c
	res.Changes = cost.Dif(repaired, d)
	return res, nil
}

// mainLoop resolves violations until every dirty set drains (Fig. 4
// lines 5–8). limit is the absolute resolution count beyond which the
// termination invariant is considered broken.
func (e *engine) mainLoop(limit int) error {
	for {
		p, ok := e.pickNext()
		if !ok {
			return nil
		}
		if err := e.execute(p); err != nil {
			return fmt.Errorf("repair: resolving violation: %w", err)
		}
		if e.resolutions > limit {
			return fmt.Errorf("repair: exceeded %d resolutions; termination invariant broken", limit)
		}
	}
}

// pickNext implements procedure PICKNEXT (Fig. 5) with the §7.2
// dependency-graph optimization: groups are visited in topological order
// of the CFD dependency graph's condensation, and the cheapest plan of
// the first stratum holding a live violation is returned. Repairing
// upstream rules first matters for accuracy: a rule whose LHS attribute
// still carries noise would otherwise commit a wrong constant (derived
// from the dirty LHS) to an equivalence class, and undoing constants is
// impossible — the conflict would surface later as LHS edits or nulls on
// clean tuples. Within a stratum the fix of least cost wins, so
// low-weight (likely dirty) cells are repaired before trusted ones. At
// most MaxScan live violations per group are evaluated in one call, and
// stale dirty entries are dropped as they are discovered.
//
// Dirty tuples are visited in ascending id order — never in Go map
// order — so the violations scanned under the MaxScan cap, and the
// winner of cost ties, are fixed properties of the engine state. This is
// what lets the component-parallel schedule promise byte-identical
// output at every worker count.
func (e *engine) pickNext() (plan, bool) {
	var best plan
	bestOK := false
	bestComp := 0
	for _, gi := range e.order {
		if bestOK && e.comp[gi] > bestComp {
			break // strictly later stratum; the current best stands
		}
		if e.store.GroupTotal(gi) == 0 {
			// The maintained per-group count is zero, and every violation
			// the class-aware findViolation can see is also a raw store
			// violation (class identity only ever *adds* equality), so
			// the whole dirty set of this group is stale — skip it.
			continue
		}
		set := e.dirty[gi]
		if len(set) == 0 {
			continue
		}
		ids := e.idScratch[:0]
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.idScratch = ids
		scanned := 0
		for _, id := range ids {
			t := e.rel.Tuple(id)
			if t == nil {
				delete(set, id)
				continue
			}
			v, live := e.findViolation(gi, t)
			if !live {
				delete(set, id)
				continue
			}
			p, ok := e.planViolation(v)
			if !ok {
				// Unreachable for satisfiable Σ (see planViolation);
				// drop defensively rather than loop forever.
				delete(set, id)
				continue
			}
			if !bestOK || p.cost < best.cost {
				best, bestOK = p, true
				bestComp = e.comp[gi]
			}
			scanned++
			if e.opts.MaxScan > 0 && scanned >= e.opts.MaxScan {
				break
			}
		}
	}
	return best, bestOK
}

// instantiate is the instantiation phase of Fig. 4 (lines 9–13): every
// equivalence class whose target is still '_' and whose members disagree
// gets the constant of least cost among its members' current values.
// Reports whether anything changed (if so, new violations may exist and
// the main loop must run again).
func (e *engine) instantiate() bool {
	changed := false
	e.classes.Roots(func(rep eqclass.Key, kind eqclass.Kind, _ string, members []eqclass.Key) {
		if kind != eqclass.Unset || len(members) < 2 {
			return
		}
		// Gather the distinct stored values of the members.
		var candidates []relation.Value
		seen := make(map[string]bool)
		allEqual := true
		var first relation.Value
		for i, m := range members {
			t := e.rel.Tuple(m.T)
			if t == nil {
				continue
			}
			v := t.Vals[m.A]
			if i == 0 {
				first = v
			} else if !relation.StrictEq(first, v) {
				allEqual = false
			}
			if !v.Null && !seen[v.Str] {
				seen[v.Str] = true
				candidates = append(candidates, v)
			}
		}
		if allEqual {
			return // nothing to reconcile; leave the target open (no-op)
		}
		if len(candidates) == 0 {
			e.classes.SetNull(rep)
			e.applyTarget(rep)
			changed = true
			return
		}
		best := candidates[0]
		bestCost := e.classCost(rep, best)
		for _, v := range candidates[1:] {
			if c := e.classCost(rep, v); c < bestCost {
				best, bestCost = v, c
			}
		}
		if err := e.classes.SetConst(rep, best.Str); err != nil {
			// Unreachable: the class was Unset above and Roots holds no
			// concurrent mutators; fall back to null to stay safe.
			e.classes.SetNull(rep)
		}
		if e.opts.Trace != nil {
			e.opts.Trace("instant  t%d.%s := %q class=%d",
				rep.T, e.rel.Schema().Attr(rep.A), best.Str, len(members))
		}
		e.applyTarget(rep)
		changed = true
	})
	return changed
}
