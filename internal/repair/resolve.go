package repair

import (
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/eqclass"
	"cfdclean/internal/relation"
)

// planKind enumerates the repair actions of CFD-RESOLVE (§4.1).
type planKind int

const (
	// planSetConst upgrades targ(eq(k1)) from '_' to the constant v
	// (cases 1.1 and 1.2 with an available LHS attribute).
	planSetConst planKind = iota
	// planSetNull upgrades targ(eq(k1)) to null (the fallback of cases
	// 1.2 and 2.2 when no certain value resolves the conflict).
	planSetNull
	// planMerge merges eq(k1) and eq(k2) (case 2.1).
	planMerge
)

// plan is a fully evaluated resolution step with its Cost(t, B, v); the
// cheapest plan across the scanned violations is executed (PICKNEXT,
// Fig. 5).
type plan struct {
	kind planKind
	k1   eqclass.Key
	k2   eqclass.Key    // merge partner (planMerge only)
	v    relation.Value // value to assign (planSetConst only)
	cost float64
	lhs  bool // true when the plan edits an LHS attribute (cases 1.2/2.2)
}

// planViolation evaluates how CFD-RESOLVE would fix v and at what cost.
// ok is false when the violation cannot be resolved (which cannot happen
// for satisfiable Σ; kept as a defensive signal).
func (e *engine) planViolation(v violation) (plan, bool) {
	n, t := v.rule, v.t
	if v.partner == nil {
		// Case 1: t[X] ≼ tp[X] but t[A] ⋠ tp[A], tp[A] a constant. Per
		// §3.1 the violation can be resolved either by modifying the RHS
		// to match tp[A] or by editing an LHS attribute so that t[X] no
		// longer matches the pattern; the cheaper option wins. The LHS
		// alternative is essential when the LHS itself carries the noise
		// (e.g. a mistyped zip that happens to equal another city's zip):
		// blindly enforcing the pattern constant would rewrite correct
		// attributes of the tuple — and of every class member.
		ka := key(t, n.A)
		if kind, _ := e.classes.Target(ka); kind == eqclass.Unset {
			// Case 1.1: the RHS target is free; fix it to the pattern
			// constant. §3.1 also allows an LHS edit here, and it is
			// essential when the LHS itself carries the noise — e.g. a
			// zip mistyped into another city's zip would otherwise drag
			// the tuple's whole (possibly class-merged) address to the
			// wrong city. But pattern rows are trusted and the dirty and
			// clean weight ranges overlap, so a plain cost comparison
			// misfires on marginal cases; the LHS alternative is taken
			// only when it wins by a factor of two — in practice, when
			// enforcing the constant would rewrite a sizable equivalence
			// class while one LHS cell explains the violation.
			val := relation.S(n.TpA.Const)
			rhs := plan{kind: planSetConst, k1: ka, v: val, cost: e.classCost(ka, val)}
			if lhs, ok := e.planLHS(t, n, true); ok && 2*lhs.cost < rhs.cost {
				return lhs, true
			}
			return rhs, true
		}
		// Case 1.2: the RHS target is a different constant or null; the
		// violation must be resolved on the LHS — a situation that does
		// not arise when repairing traditional FDs.
		return e.planLHS(t, n, true)
	}
	// Case 2: t violates a variable-RHS rule with partner t'.
	ka, kb := key(t, n.A), key(v.partner, n.A)
	akind, aval := e.classes.Target(ka)
	bkind, bval := e.classes.Target(kb)
	switch {
	case akind == eqclass.Null || bkind == eqclass.Null:
		// Case 2.3: one side is already null; by the SQL semantics the
		// violation is resolved. findViolation filters these out, but a
		// concurrent upgrade within this scan batch may race here; treat
		// as a no-op merge with zero cost.
		return plan{}, false
	case akind == eqclass.Const && bkind == eqclass.Const && aval != bval:
		// Case 2.2: distinct constant targets; edit the LHS of t or t'.
		p1, ok1 := e.planLHS(t, n, false)
		p2, ok2 := e.planLHS(v.partner, n, false)
		switch {
		case ok1 && ok2:
			if p1.cost <= p2.cost {
				return p1, true
			}
			return p2, true
		case ok1:
			return p1, true
		case ok2:
			return p2, true
		default:
			return plan{}, false
		}
	default:
		// Case 2.1: at least one target is '_' and none is null; merge.
		p := plan{kind: planMerge, k1: ka, k2: kb}
		// Cost it as PICKNEXT does (FINDV with B = A): the merged class
		// will eventually hold one value v — the side's constant if one is
		// fixed, otherwise the better of the two stored values (the
		// most-common-value strategy) — and the cost is what assigning v
		// across both classes would charge. The value itself stays
		// deferred to instantiation; only the cost is estimated now.
		// Merges bridging agreeing values cost 0 and execute first;
		// merges bridging a disagreement compete on real cost, so a
		// transiently mismatched tuple gets its LHS repaired before it
		// can pollute a large clean class.
		switch {
		case akind == eqclass.Const:
			p.cost = e.propagationCost(t, v.partner, n, kb, aval)
		case bkind == eqclass.Const:
			p.cost = e.propagationCost(v.partner, t, n, ka, bval)
		default:
			va, vb := t.Vals[n.A], v.partner.Vals[n.A]
			ca := e.classCost(ka, va) + e.classCost(kb, va)
			cb := e.classCost(ka, vb) + e.classCost(kb, vb)
			if cb < ca {
				p.cost = cb
			} else {
				p.cost = ca
			}
		}
		// §3.1 also lists an LHS alternative: separate t[X] from t'[X]
		// instead of equating the RHS. Merging is the default (as in
		// [5], the deferred value choice is what equivalence classes are
		// for), but when two tuples agree on X only because one side's
		// key is itself noise — two typo'd zips colliding, a stolen key
		// value — the merge would chain two unrelated clusters together
		// and a later majority commit would rewrite the smaller one.
		// The same conservative margin as case 1.1 applies: the LHS
		// edit must undercut the merge by a factor of two, which in
		// practice it only does when the merge bridges a high-weight
		// disagreement while one low-weight LHS cell explains it.
		best := p
		if q, lok := e.planLHS(t, n, false); lok && 2*q.cost < best.cost {
			best = q
		}
		if q, lok := e.planLHS(v.partner, n, false); lok && 2*q.cost < best.cost {
			best = q
		}
		return best, true
	}
}

// propagationCost estimates the true cost of merging a constant-carrying
// class (tuple c, value cval) with the unset class of one disagreeing
// partner. Costing just the one pair systematically undercounts: the
// same constant will be pushed into every other partner of c's group one
// merge at a time, so the decision to start propagating must carry the
// whole bill. The estimate is the pairwise class cost scaled by the
// number of partners currently disagreeing with c. When the constant is
// right (one noisy partner) the scale factor is 1 and nothing changes;
// when the constant is wrong (it disagrees with a whole clean group) the
// scaled cost lets PICKNEXT prefer any plan that separates c instead.
func (e *engine) propagationCost(c, partner *relation.Tuple, n *cfd.Normal, kb eqclass.Key, cval string) float64 {
	pair := e.classCost(kb, relation.S(cval))
	disagree := len(e.det.Partners(c, n))
	if disagree > 1 {
		return pair * float64(disagree)
	}
	return pair
}

// planLHS builds the LHS-edit plan of cases 1.2 and 2.2 for tuple t and
// rule n: choose an attribute B ∈ X whose equivalence class is still
// free, and a replacement value v ≠ t[B] via FINDV; if no free attribute
// exists, fall back to nulling the class with the smallest weight (§4.1).
//
// needConstCell restricts candidates to attributes whose pattern cell is
// a constant: for single-tuple (case 1) violations, editing an attribute
// under a wildcard cell cannot break the pattern match, so only constant
// cells help. For pairwise (case 2.2) violations any LHS edit separates
// t[X] from t'[X].
func (e *engine) planLHS(t *relation.Tuple, n *cfd.Normal, needConstCell bool) (plan, bool) {
	best := plan{cost: -1}
	for i, a := range n.X {
		if needConstCell && n.TpX[i].Wildcard {
			continue
		}
		kb := key(t, a)
		if kind, _ := e.classes.Target(kb); kind != eqclass.Unset {
			continue
		}
		var p plan
		if v, vio, ok := e.findV(t, a, n); ok {
			// Scale by the violations the edited tuple would retain, as
			// the incremental engine's costfix does (§5.1): an LHS value
			// that silences this rule but leaves the tuple fighting
			// others is no fix, just a shifted conflict.
			p = plan{kind: planSetConst, k1: kb, v: v,
				cost: e.classCost(kb, v) * float64(1+vio), lhs: true}
		} else {
			// FINDV found no semantically related value; assign null.
			p = plan{kind: planSetNull, k1: kb, cost: e.classWeight(kb), lhs: true}
		}
		if best.cost < 0 || p.cost < best.cost {
			best = p
		}
	}
	if best.cost >= 0 {
		return best, true
	}
	// No free LHS attribute: the conflict has no certain resolution. Null
	// the LHS class with minimal weight (anything but an already-null
	// class, which would be a no-op — and would mean the tuple no longer
	// matches the pattern anyway).
	for _, a := range n.X {
		kb := key(t, a)
		if kind, _ := e.classes.Target(kb); kind == eqclass.Null {
			continue
		}
		p := plan{kind: planSetNull, k1: kb, cost: e.classWeight(kb), lhs: true}
		if best.cost < 0 || p.cost < best.cost {
			best = p
		}
	}
	return best, best.cost >= 0
}

// findV implements procedure FINDV (§4.2) for an LHS attribute B of rule
// n: gather the set S of tuples agreeing with t on X ∪ {A} \ {B} — the
// tuples sharing t's "semantic context" — and pick from their B-values
// the candidate v ≠ t[B] minimizing Cost(t, B, v). ok is false when no
// such value exists (the caller then assigns null).
func (e *engine) findV(t *relation.Tuple, b int, n *cfd.Normal) (relation.Value, int, bool) {
	attrs := make([]int, 0, len(n.X))
	for _, a := range n.X {
		if a != b {
			attrs = append(attrs, a)
		}
	}
	if n.A != b {
		attrs = append(attrs, n.A)
	}
	kb := key(t, b)
	cur := t.Vals[b]
	if len(attrs) == 0 {
		return relation.Value{}, 0, false
	}
	// Candidates are ranked by support first — how many context tuples
	// carry the value — and by Cost(t, B, v) only to break ties: the
	// paper's most-common-value strategy. Ranking by cost alone is a
	// trap at scale: the DL-closest "different value" in any context is
	// usually another tuple's typo of the same string, and picking it
	// would spread noise onto clean tuples.
	counts := make(map[string]int)
	ix := e.supportIndex(attrs)
	for _, id := range ix.Lookup(t.Project(ix.Attrs())) {
		if id == t.ID {
			continue
		}
		t2 := e.rel.Tuple(id)
		if t2 == nil {
			continue
		}
		v := t2.Vals[b]
		if v.Null {
			continue
		}
		if !cur.Null && v.Str == cur.Str {
			continue // must differ from the current value
		}
		counts[v.Str]++
	}
	// Rank candidates by the violations t would incur with B := v (the
	// value must fit every rule covering B, not just the one being
	// resolved — a zip that matches the city but not the street would
	// only shift the conflict onto ϕ4 and domino from there), then by
	// support, then by Cost(t, B, v). Candidates are visited in sorted
	// value order so full ties break lexicographically, never by map
	// order — part of the engine's determinism-by-construction.
	cands := make([]string, 0, len(counts))
	for s := range counts {
		cands = append(cands, s)
	}
	sort.Strings(cands)
	probe := t.Clone()
	var best relation.Value
	bestVio, bestN, bestCost := -1, 0, -1.0
	for _, s := range cands {
		n := counts[s]
		v := relation.S(s)
		probe.Vals[b] = v
		vio := e.det.VioTuple(probe)
		c := e.classCost(kb, v)
		better := bestVio < 0 ||
			vio < bestVio ||
			(vio == bestVio && n > bestN) ||
			(vio == bestVio && n == bestN && c < bestCost)
		if better {
			best, bestVio, bestN, bestCost = v, vio, n, c
		}
	}
	if bestVio < 0 {
		return relation.Value{}, 0, false
	}
	return best, bestVio, true
}

// execute applies a plan: the body of CFD-RESOLVE. It updates equivalence
// classes, writes assigned targets through to the working relation, and
// maintains the dirty sets.
func (e *engine) execute(p plan) error {
	e.resolutions++
	if e.opts.Trace != nil {
		attr := e.rel.Schema().Attr(p.k1.A)
		switch p.kind {
		case planSetConst:
			e.opts.Trace("setconst t%d.%s := %q cost=%.3f class=%d lhs=%v",
				p.k1.T, attr, p.v.Str, p.cost, e.classes.Size(p.k1), p.lhs)
		case planSetNull:
			e.opts.Trace("setnull  t%d.%s cost=%.3f class=%d lhs=%v",
				p.k1.T, attr, p.cost, e.classes.Size(p.k1), p.lhs)
		case planMerge:
			e.opts.Trace("merge    t%d.%s + t%d.%s cost=%.3f sizes=%d+%d",
				p.k1.T, attr, p.k2.T, e.rel.Schema().Attr(p.k2.A), p.cost,
				e.classes.Size(p.k1), e.classes.Size(p.k2))
		}
	}
	switch p.kind {
	case planSetConst:
		if err := e.classes.SetConst(p.k1, p.v.Str); err != nil {
			return err
		}
		e.applyTarget(p.k1)
	case planSetNull:
		e.classes.SetNull(p.k1)
		e.applyTarget(p.k1)
	case planMerge:
		if err := e.classes.Merge(p.k1, p.k2); err != nil {
			return err
		}
		if _, ok := e.classes.Value(p.k1); ok {
			// One side carried a constant: write it through everywhere.
			e.applyTarget(p.k1)
		} else if v, ok := e.majorityValue(p.k1); ok {
			// FINDV's most-common-value strategy, applied eagerly: once a
			// class accumulates a clear majority of agreeing stored
			// values, the minority cells are noise with overwhelming
			// evidence, and committing now prevents a poor local decision
			// elsewhere — e.g. a constant-RHS rule matching the minority
			// value (a zip mistyped into another city's zip) would
			// otherwise fire first and drag the tuple to the wrong city.
			if err := e.classes.SetConst(p.k1, v.Str); err != nil {
				return err
			}
			if e.opts.Trace != nil {
				e.opts.Trace("majority t%d.%s := %q class=%d",
					p.k1.T, e.rel.Schema().Attr(p.k1.A), v.Str, e.classes.Size(p.k1))
			}
			e.applyTarget(p.k1)
		} else {
			// No constant and no majority yet: the value choice stays
			// deferred to instantiation (§4.1 — "we defer the assignment
			// of targ(E) as much as possible"). The tuples' violation
			// status changed; re-flag them.
			for _, k := range []eqclass.Key{p.k1, p.k2} {
				e.markDirty(k.T, k.A)
			}
		}
	}
	return nil
}

// majorityValue reports the stored value held by more than two thirds of
// k's class members, requiring at least three members; ok is false when
// the class is small or contested.
func (e *engine) majorityValue(k eqclass.Key) (relation.Value, bool) {
	members := e.classes.Members(k)
	if len(members) < 3 {
		return relation.Value{}, false
	}
	counts := make(map[string]int, 2)
	total := 0
	for _, m := range members {
		t := e.rel.Tuple(m.T)
		if t == nil {
			continue
		}
		v := t.Vals[m.A]
		if v.Null {
			continue
		}
		counts[v.Str]++
		total++
	}
	for s, c := range counts {
		if 3*c > 2*total && total >= 3 {
			return relation.S(s), true
		}
	}
	return relation.Value{}, false
}
