package repair

import (
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// schema2 builds a compact schema for targeted mechanism tests.
func schema2(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("r", "K", "A", "B")
}

// TestMajorityCommit verifies the eager most-common-value commit: a class
// merged across one noisy and several clean tuples takes the majority
// value immediately rather than waiting for instantiation.
func TestMajorityCommit(t *testing.T) {
	s := schema2(t)
	d := relation.New(s)
	// Five tuples share K; one disagrees on A (the noise).
	d.MustInsert(relation.NewTuple(1, "k", "good", "x"))
	d.MustInsert(relation.NewTuple(2, "k", "good", "x"))
	d.MustInsert(relation.NewTuple(3, "k", "good", "x"))
	d.MustInsert(relation.NewTuple(4, "k", "good", "x"))
	d.MustInsert(relation.NewTuple(5, "k", "bad", "x"))
	fd, err := cfd.FD("fd", s, []string{"K"}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Batch(d, cfd.NormalizeAll([]*cfd.CFD{fd}), nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := relation.TupleID(1); id <= 5; id++ {
		if got := res.Repair.Tuple(id).Vals[1].Str; got != "good" {
			t.Fatalf("tuple %d repaired to %q, want majority value \"good\"", id, got)
		}
	}
	if res.Changes != 1 {
		t.Fatalf("changes = %d, want 1 (only the noisy cell)", res.Changes)
	}
}

// TestPropagationGuard verifies the propagation-aware merge cost: a tuple
// whose key was mistyped into another group's key must not drag that
// group's RHS onto itself — its own low-weight key cell is the repair.
func TestPropagationGuard(t *testing.T) {
	s := schema2(t)
	d := relation.New(s)
	// Group k1 (majority): A = "v1". Group k2: A = "v2".
	for i := 1; i <= 4; i++ {
		d.MustInsert(relation.NewTuple(relation.TupleID(i), "k1", "v1", "x"))
	}
	for i := 5; i <= 8; i++ {
		d.MustInsert(relation.NewTuple(relation.TupleID(i), "k2", "v2", "x"))
	}
	// Tuple 9 belongs to k2 (A = v2) but its key was mistyped to k1; the
	// key cell carries a low weight (suspected dirty).
	bad := relation.NewTuple(9, "k1", "v2", "x")
	bad.SetWeight(0, 0.1)
	d.MustInsert(bad)
	fd, err := cfd.FD("fd", s, []string{"K"}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Batch(d, cfd.NormalizeAll([]*cfd.CFD{fd}), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The clean k1 tuples must keep v1.
	for id := relation.TupleID(1); id <= 4; id++ {
		if got := res.Repair.Tuple(id).Vals[1].Str; got != "v1" {
			t.Fatalf("clean tuple %d dragged to %q", id, got)
		}
	}
	// Tuple 9 must have been separated (key edited to k2 or elsewhere),
	// not have its A rewritten to v1 along with a propagation.
	t9 := res.Repair.Tuple(9)
	if t9.Vals[0].Str == "k1" && t9.Vals[1].Str == "v1" {
		t.Fatalf("tuple 9 absorbed into k1: %v", t9)
	}
	if !cfd.Satisfies(res.Repair, cfd.NormalizeAll([]*cfd.CFD{fd})) {
		t.Fatal("repair violates the FD")
	}
}

// TestConstantRowWinsOnDirtyRHS: the classic case 1.1 — a tuple matching a
// constant pattern with a deviating RHS gets the pattern constant.
func TestConstantRowWinsOnDirtyRHS(t *testing.T) {
	s := schema2(t)
	d := relation.New(s)
	d.MustInsert(relation.NewTuple(1, "k1", "wrong", "x"))
	phi, err := cfd.New("c", s, []string{"K"}, []string{"A"},
		[]cfd.Cell{cfd.C("k1"), cfd.C("right")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Batch(d, cfd.NormalizeAll([]*cfd.CFD{phi}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Repair.Tuple(1).Vals[1].Str; got != "right" {
		t.Fatalf("A = %q, want pattern constant", got)
	}
}

// TestLHSEscapeWhenRHSPinned: case 1.2 — when the RHS class is already
// pinned to a conflicting constant, the violation resolves on the LHS.
func TestLHSEscapeWhenRHSPinned(t *testing.T) {
	s := schema2(t)
	d := relation.New(s)
	d.MustInsert(relation.NewTuple(1, "k1", "a-val", "x"))
	// Two constant rules disagree about tuple 1's A given K = k1 vs
	// B = x: one must win via the RHS, the other must escape via LHS.
	phi1, err := cfd.New("p1", s, []string{"K"}, []string{"A"},
		[]cfd.Cell{cfd.C("k1"), cfd.C("v1")})
	if err != nil {
		t.Fatal(err)
	}
	phi2, err := cfd.New("p2", s, []string{"B"}, []string{"A"},
		[]cfd.Cell{cfd.C("x"), cfd.C("v2")})
	if err != nil {
		t.Fatal(err)
	}
	sigma := cfd.NormalizeAll([]*cfd.CFD{phi1, phi2})
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair violates Σ")
	}
	// The tuple can no longer match both patterns: either K or B was
	// edited (to null or another value).
	t1 := res.Repair.Tuple(1)
	if t1.Vals[0].Str == "k1" && t1.Vals[2].Str == "x" && !t1.Vals[0].Null && !t1.Vals[2].Null {
		t.Fatalf("tuple still matches both conflicting patterns: %v", t1)
	}
}

// TestTraceCallback ensures the Trace hook fires for every mutation kind.
func TestTraceCallback(t *testing.T) {
	s := schema2(t)
	d := relation.New(s)
	d.MustInsert(relation.NewTuple(1, "k1", "wrong", "x"))
	d.MustInsert(relation.NewTuple(2, "k2", "a", "x"))
	d.MustInsert(relation.NewTuple(3, "k2", "b", "x"))
	phi, err := cfd.New("c", s, []string{"K"}, []string{"A"},
		[]cfd.Cell{cfd.C("k1"), cfd.C("right")},
		[]cfd.Cell{cfd.W, cfd.W})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	_, err = Batch(d, cfd.NormalizeAll([]*cfd.CFD{phi}),
		&Options{Trace: func(string, ...any) { lines++ }})
	if err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace hook never fired")
	}
}
