package repair

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
	"cfdclean/internal/relation"
)

// This file is the repair-correctness test battery: property tests over
// randomized schemas, tableaux and mutation sequences asserting, for
// every instance,
//
//	(a) the repair satisfies every CFD,
//	(b) the repair is byte-identical across worker counts
//	    (determinism-by-construction of the component-parallel engine),
//	(c) repair cost is monotone under nested noise — removing injected
//	    noise never makes the repair more expensive.
//
// Seeds are fixed so failures reproduce exactly; CI runs the battery
// under -race, which exercises the concurrent component schedule.

// workerCounts are the parallelism settings every property is checked
// under, per the battery's contract.
func workerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// randInstance generates a random schema, a satisfiable random Σ over
// it, and a random relation drawn from small per-attribute value pools
// (small pools keep violations frequent).
func randInstance(t *testing.T, rng *rand.Rand) (*relation.Relation, []*cfd.Normal) {
	t.Helper()
	arity := 4 + rng.Intn(3)
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	schema := relation.MustSchema("rand", attrs...)

	pools := make([][]string, arity)
	for a := range pools {
		n := 2 + rng.Intn(3)
		pools[a] = make([]string, n)
		for i := range pools[a] {
			pools[a][i] = fmt.Sprintf("a%dv%d", a, i)
		}
	}
	pick := func(a int) string { return pools[a][rng.Intn(len(pools[a]))] }

	// Random tableaux: a few embedded FDs plus a few constant pattern
	// rows; regenerate until Σ is satisfiable (constant rows over the
	// same LHS value can conflict).
	var sigma []*cfd.Normal
	for try := 0; ; try++ {
		if try > 50 {
			t.Fatal("could not draw a satisfiable random sigma")
		}
		var cfds []*cfd.CFD
		nFD := 1 + rng.Intn(2)
		for i := 0; i < nFD; i++ {
			perm := rng.Perm(arity)
			nLHS := 1 + rng.Intn(2)
			lhs := make([]string, nLHS)
			for j := range lhs {
				lhs[j] = attrs[perm[j]]
			}
			rhs := []string{attrs[perm[nLHS]]}
			fd, err := cfd.FD(fmt.Sprintf("fd%d", i), schema, lhs, rhs)
			if err != nil {
				t.Fatal(err)
			}
			cfds = append(cfds, fd)
		}
		nConst := rng.Intn(3)
		for i := 0; i < nConst; i++ {
			perm := rng.Perm(arity)
			la, ra := perm[0], perm[1]
			row := []cfd.Cell{cfd.C(pick(la)), cfd.C(pick(ra))}
			c, err := cfd.New(fmt.Sprintf("const%d", i), schema,
				[]string{attrs[la]}, []string{attrs[ra]}, row)
			if err != nil {
				t.Fatal(err)
			}
			cfds = append(cfds, c)
		}
		sigma = cfd.NormalizeAll(cfds)
		if _, err := cfd.Satisfiable(sigma); err == nil {
			break
		}
	}

	d := relation.New(schema)
	size := 20 + rng.Intn(41)
	for i := 0; i < size; i++ {
		vals := make([]relation.Value, arity)
		for a := range vals {
			if rng.Intn(20) == 0 {
				vals[a] = relation.NullValue
			} else {
				vals[a] = relation.S(pick(a))
			}
		}
		tu := &relation.Tuple{Vals: vals}
		d.MustInsert(tu)
		for a := range vals {
			tu.SetWeight(a, 0.1+0.9*rng.Float64())
		}
	}
	return d, sigma
}

func serialize(t *testing.T, rel *relation.Relation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := relation.WriteCSV(rel, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkRepairProperties runs Batch at every worker count and asserts
// properties (a) and (b); it returns the workers=1 result for further
// checks.
func checkRepairProperties(t *testing.T, tag string, d *relation.Relation, sigma []*cfd.Normal) *Result {
	t.Helper()
	var ref *Result
	var refBytes []byte
	for _, w := range workerCounts() {
		res, err := Batch(d, sigma, &Options{Workers: w})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", tag, w, err)
		}
		if !cfd.Satisfies(res.Repair, sigma) {
			t.Fatalf("%s workers=%d: repair violates sigma", tag, w)
		}
		got := serialize(t, res.Repair)
		if ref == nil {
			ref, refBytes = res, got
			continue
		}
		if !bytes.Equal(got, refBytes) {
			t.Fatalf("%s workers=%d: repaired database differs from workers=1", tag, w)
		}
		if res.Cost != ref.Cost || res.Changes != ref.Changes || res.Resolutions != ref.Resolutions {
			t.Fatalf("%s workers=%d: result counters diverged: cost %v/%v changes %d/%d resolutions %d/%d",
				tag, w, res.Cost, ref.Cost, res.Changes, ref.Changes, res.Resolutions, ref.Resolutions)
		}
	}
	return ref
}

// TestPropertyRandomInstances is properties (a) and (b) over random
// schemas and tableaux.
func TestPropertyRandomInstances(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d, sigma := randInstance(t, rng)
			res := checkRepairProperties(t, "random", d, sigma)
			if serializeEq := bytes.Equal(serialize(t, d), serialize(t, d.Clone())); !serializeEq {
				t.Fatal("clone serialization differs; serialization is unstable")
			}
			// Repairing a repair is a no-op (idempotence at property scale).
			again, err := Batch(res.Repair, sigma, &Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if again.Changes != 0 || again.Cost != 0 {
				t.Fatalf("repair of a repair changed %d cells (cost %v)", again.Changes, again.Cost)
			}
		})
	}
}

// TestPropertyMutationSequences drives random insert/delete/update
// sequences into an instance and re-checks (a) and (b) after every
// burst: the engine must hold its contract on any reachable database
// state, not just freshly loaded ones.
func TestPropertyMutationSequences(t *testing.T) {
	for seed := int64(20); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d, sigma := randInstance(t, rng)
			arity := d.Schema().Arity()
			pickVal := func(a int) relation.Value {
				// Steal a value the relation already holds (or null) so
				// mutations collide with existing buckets.
				ts := d.Tuples()
				if len(ts) == 0 || rng.Intn(10) == 0 {
					return relation.NullValue
				}
				return ts[rng.Intn(len(ts))].Vals[a]
			}
			for burst := 0; burst < 3; burst++ {
				for step := 0; step < 15; step++ {
					switch op := rng.Intn(10); {
					case op < 2: // insert
						vals := make([]relation.Value, arity)
						for a := range vals {
							vals[a] = pickVal(a)
						}
						d.MustInsert(&relation.Tuple{Vals: vals})
					case op < 3: // delete
						if ts := d.Tuples(); len(ts) > 5 {
							d.Delete(ts[rng.Intn(len(ts))].ID)
						}
					default: // update
						ts := d.Tuples()
						tu := ts[rng.Intn(len(ts))]
						a := rng.Intn(arity)
						if _, err := d.Set(tu.ID, a, pickVal(a)); err != nil {
							t.Fatal(err)
						}
					}
				}
				checkRepairProperties(t, fmt.Sprintf("burst%d", burst), d, sigma)
			}
		})
	}
}

// TestPropertyCostMonotoneUnderNestedNoise is property (c): with the
// noise of one generated workload applied cell by cell, a database
// carrying a subset of another's noise never costs more to repair.
// (Nesting matters: two independently drawn noise sets of different
// rates are not comparable instance by instance.)
func TestPropertyCostMonotoneUnderNestedNoise(t *testing.T) {
	for _, seed := range []int64{3, 11, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ds, err := gen.New(gen.Config{Size: 250, NoiseRate: 0.10, ConstShare: 0.5, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			// Enumerate the injected noise in canonical cell order.
			type cell struct {
				id relation.TupleID
				a  int
				v  relation.Value
			}
			var noise []cell
			for _, tu := range ds.Opt.Tuples() {
				dirty := ds.Dirty.Tuple(tu.ID)
				for a := range tu.Vals {
					if !relation.StrictEq(tu.Vals[a], dirty.Vals[a]) {
						noise = append(noise, cell{id: tu.ID, a: a, v: dirty.Vals[a]})
					}
				}
			}
			if len(noise) < 8 {
				t.Fatalf("only %d noisy cells; test is vacuous", len(noise))
			}
			prevCost := -1.0
			for _, frac := range []int{0, 1, 2, 3, 4} {
				k := len(noise) * frac / 4
				d := ds.Opt.Clone()
				for _, c := range noise[:k] {
					if _, err := d.Set(c.id, c.a, c.v); err != nil {
						t.Fatal(err)
					}
				}
				res, err := Batch(d, ds.Sigma, &Options{Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if !cfd.Satisfies(res.Repair, ds.Sigma) {
					t.Fatalf("k=%d: repair violates sigma", k)
				}
				if res.Cost < prevCost {
					t.Fatalf("cost decreased as noise grew: %d cells -> %v, fewer cells -> %v",
						k, res.Cost, prevCost)
				}
				if k == 0 && res.Cost != 0 {
					t.Fatalf("clean database repaired at cost %v", res.Cost)
				}
				prevCost = res.Cost
			}
		})
	}
}
