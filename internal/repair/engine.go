// Package repair implements the paper's batch repairing module: algorithm
// BATCHREPAIR (§4, Figs. 4–5) with procedures PICKNEXT, CFD-RESOLVE and
// FINDV over equivalence classes of tuple attributes. Finding a minimum-
// cost repair is NP-complete even for fixed schema and fixed Σ (paper
// Corollary 4.1), so the algorithm is a cost-guided greedy heuristic; it
// terminates and returns a repair satisfying Σ (Theorem 4.2).
package repair

import (
	"fmt"
	"runtime"
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cost"
	"cfdclean/internal/eqclass"
	"cfdclean/internal/relation"
)

// Options configures BATCHREPAIR.
type Options struct {
	// CostModel scores candidate value changes; nil means the paper's
	// default (DL metric, §3.2).
	CostModel *cost.Model
	// MaxScan caps how many live violations PICKNEXT evaluates per
	// iteration within the chosen group's dirty set. The paper's
	// unoptimized PICKNEXT scans every dirty tuple of every CFD and "runs
	// very slow" (§7.2); like the authors we bound the scan and use the
	// CFD dependency graph to focus it. 0 means the default (64);
	// negative means no cap.
	MaxScan int
	// NoDepGraph disables dependency-graph ordering of the embedded-FD
	// groups (then groups are visited in input order). Exposed for the
	// ablation benchmarks.
	NoDepGraph bool
	// Workers bounds the component-parallel execution of BATCHREPAIR:
	// the violation graph's connected components (tuples sharing no
	// violation edge, per cfd.VioStore.Components) are repaired
	// concurrently, each against a pristine view of the database with
	// per-worker equivalence-class and cost state, and the resolved fixes
	// are merged in canonical component order. 0 means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path. The repaired
	// output is byte-identical at every setting — determinism is by
	// construction, not by luck of scheduling.
	Workers int
	// Trace, when non-nil, receives a line per executed resolution step;
	// for debugging and the verbose CLI mode.
	Trace func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.CostModel == nil {
		out.CostModel = cost.Default()
	}
	if out.MaxScan == 0 {
		out.MaxScan = 64
	}
	if out.MaxScan < 0 {
		out.MaxScan = 0 // explicit "no cap"
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Result reports a completed batch repair.
type Result struct {
	// Repair is the repaired database (the input is never modified).
	Repair *relation.Relation
	// Cost is cost(Repr, D) under the configured model (§3.2).
	Cost float64
	// Changes counts modified attribute values, dif(D, Repr).
	Changes int
	// Resolutions counts CFD-RESOLVE invocations (algorithm iterations),
	// summed across the violation-graph components (plus the residual
	// pass); identical at every worker count.
	Resolutions int
	// InstantiationRounds counts how many times the instantiation phase
	// (Fig. 4 lines 9–13) ran, summed the same way.
	InstantiationRounds int
}

// engine is the mutable state of one BATCHREPAIR run. Under the
// component-parallel schedule each worker owns one engine over its own
// clone of the database, so every map below — equivalence classes, dirty
// sets, cost memo, support indices — is per-worker scratch state, never
// shared across goroutines.
type engine struct {
	rel     *relation.Relation // working copy; stored values track targets
	orig    *relation.Relation // input database (for cost accounting)
	sigma   []*cfd.Normal
	store   *cfd.VioStore // delta-maintained violation state over the working copy
	det     *cfd.Detector // the store's mask/index machinery
	groups  []cfd.Group
	scorer  *cost.Scratch // per-worker memoized view of the cost model
	classes *eqclass.Classes
	opts    Options

	// dirty[i] is the union of Dirty_Tuples(φ) over the rules φ in
	// groups[i]: tuples possibly violating some rule of the group.
	dirty []map[relation.TupleID]bool
	order []int // group indices in repair order (dependency graph)
	comp  []int // comp[i] = dependency stratum of groups[i]

	// sIdx are the FINDV support indices on X ∪ {A} \ {B} (§4.2),
	// keyed by the fixed-width integer key of the sorted attribute set.
	// Built lazily.
	sIdx map[relation.Key]*relation.HashIndex

	// touching[a] lists group indices whose X ∪ {A} contains attribute a.
	touching map[int][]int

	// seedGroups maps each violating tuple to the groups it violates
	// under; built once from the store to seed per-component dirty sets.
	seedGroups map[relation.TupleID][]int

	// recording, writes: while a component repair runs, every setStored
	// is journaled (first write per cell keeps the pristine value) so the
	// component's net fixes can be collected and the working copy rolled
	// back to its pristine state for the next component.
	recording bool
	writes    []cellWrite

	// idScratch is pickNext's reusable buffer for sorting dirty ids.
	idScratch []relation.TupleID

	resolutions int
}

// cellWrite is one journaled setStored: the cell and the value it held
// before the write.
type cellWrite struct {
	id  relation.TupleID
	a   int
	old relation.Value
}

func attrsKey(attrs []int) relation.Key {
	s := append([]int(nil), attrs...)
	sort.Ints(s)
	ids := make([]relation.ValueID, len(s))
	for i, a := range s {
		ids[i] = relation.ValueID(a)
	}
	return relation.KeyOfIDs(ids)
}

func newEngine(d *relation.Relation, sigma []*cfd.Normal, opts Options) (*engine, error) {
	if _, err := cfd.Satisfiable(sigma); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	work := d.Clone()
	// One violation store for the whole run: it scans once here and then
	// maintains itself under every write the engine performs, via the
	// relation's mutation journal — no per-round detector rebuilds.
	store := cfd.NewVioStoreWorkers(work, sigma, opts.Workers)
	det := store.Detector()
	// Pre-size the equivalence-class universe from the store's maintained
	// violation count: each violating tuple contributes at most arity keys,
	// and the count is known before the first resolution runs. Capped so a
	// pathological input cannot drive a huge empty allocation.
	classHint := store.TotalViolations() * d.Schema().Arity()
	if classHint > 1<<16 {
		classHint = 1 << 16
	}
	e := &engine{
		rel:      work,
		orig:     d,
		sigma:    sigma,
		store:    store,
		det:      det,
		groups:   det.Groups(),
		scorer:   opts.CostModel.Scratch(),
		classes:  eqclass.NewSized(work.Dict(), classHint),
		opts:     opts,
		sIdx:     make(map[relation.Key]*relation.HashIndex),
		touching: make(map[int][]int),
	}
	e.dirty = make([]map[relation.TupleID]bool, len(e.groups))
	reps := make([]*cfd.Normal, len(e.groups))
	for i, g := range e.groups {
		e.dirty[i] = make(map[relation.TupleID]bool)
		reps[i] = g.Rep()
		for _, a := range g.X() {
			e.touching[a] = appendUnique(e.touching[a], i)
		}
		e.touching[g.A()] = appendUnique(e.touching[g.A()], i)
	}
	e.comp = make([]int, len(e.groups))
	if opts.NoDepGraph {
		e.order = make([]int, len(e.groups))
		for i := range e.order {
			e.order[i] = i // all comps stay 0: one flat stratum
		}
	} else {
		g := cfd.NewDepGraph(reps)
		e.order = g.Order()
		for i := range e.groups {
			e.comp[i] = g.Comp(i)
		}
	}
	return e, nil
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

// key returns the equivalence-class key of attribute a of tuple t.
func key(t *relation.Tuple, a int) eqclass.Key {
	return eqclass.Key{T: t.ID, A: a}
}

// setStored writes value v into attribute a of tuple t in the working
// relation and refreshes every index that covers a.
func (e *engine) setStored(t *relation.Tuple, a int, v relation.Value) {
	old, err := e.rel.Set(t.ID, a, v)
	if err != nil {
		panic(fmt.Sprintf("repair: internal: %v", err))
	}
	if relation.StrictEq(old, v) {
		return
	}
	if e.recording {
		e.writes = append(e.writes, cellWrite{id: t.ID, a: a, old: old})
	}
	if e.opts.Trace != nil {
		e.opts.Trace("write    t%d.%s %q -> %q", t.ID, e.rel.Schema().Attr(a), old, v)
	}
	// The violation store (and with it the detector's LHS indices) is
	// maintained by the relation's mutation journal; only the FINDV
	// support indices are engine-owned and refreshed here.
	for _, ix := range e.sIdx {
		if ix.Touches(a) {
			ix.Update(t)
		}
	}
}

// applyTarget writes the (just assigned) target value of k's class to the
// stored values of every class member and marks the affected tuples dirty
// for every group touching the written attributes (Fig. 4 "Update
// Dirty_Tuples").
func (e *engine) applyTarget(k eqclass.Key) {
	v, ok := e.classes.Value(k)
	if !ok {
		return
	}
	for _, m := range e.classes.Members(k) {
		t := e.rel.Tuple(m.T)
		if t == nil {
			continue
		}
		e.setStored(t, m.A, v)
		e.markDirty(m.T, m.A)
	}
}

// markDirty flags tuple id as possibly violating every group whose
// attributes include a.
func (e *engine) markDirty(id relation.TupleID, a int) {
	for _, i := range e.touching[a] {
		e.dirty[i][id] = true
	}
}

// supportIndex returns (building if needed) the FINDV index on the attr
// set. The index is always built on the *sorted* attribute positions —
// the same canonical form the memo key uses — so every caller of a
// shared index agrees on its key layout regardless of the attribute
// order its rule happened to list; lookups must project via Attrs().
// (Building with the first caller's order used to leave later callers
// with a different order probing keys that could never match.)
func (e *engine) supportIndex(attrs []int) *relation.HashIndex {
	k := attrsKey(attrs)
	ix, ok := e.sIdx[k]
	if !ok {
		sorted := append([]int(nil), attrs...)
		sort.Ints(sorted)
		ix = relation.NewHashIndex(e.rel, sorted)
		e.sIdx[k] = ix
	}
	return ix
}

// eqOnRHS reports whether t and t2 agree on attribute a for violation
// purposes: same equivalence class, or SQL-equal stored values (either
// null, or equal constants). Class identity matters because two merged-
// but-unset classes hold possibly different stored values yet are already
// destined for one target (§4.1).
func (e *engine) eqOnRHS(t, t2 *relation.Tuple, a int) bool {
	if e.classes.SameClass(key(t, a), key(t2, a)) {
		return true
	}
	return relation.Eq(t.Vals[a], t2.Vals[a])
}

// violation is one live violation found for a tuple within a group.
type violation struct {
	t       *relation.Tuple
	rule    *cfd.Normal
	partner *relation.Tuple // nil for constant-RHS (case 1) violations
}

// dict returns the working relation's interning dictionary.
func (e *engine) dict() *relation.Dict { return e.rel.Dict() }

// findViolation returns the first live violation of tuple t within group
// gi, or ok=false if t currently satisfies every rule of the group.
// Rules are visited in the group's (deterministic) order; within a rule
// the canonical partner is the disagreeing tuple of smallest id, not the
// first one the index bucket happens to list — bucket-internal order is
// perturbed by the remove-and-swap index maintenance of earlier writes
// and undos, and determinism-by-construction forbids it leaking into the
// chosen plan.
func (e *engine) findViolation(gi int, t *relation.Tuple) (violation, bool) {
	g := e.groups[gi]
	rules := g.MatchingRules(t)
	if len(rules) == 0 {
		return violation{}, false
	}
	a := g.A()
	var bucket []relation.TupleID
	for _, n := range rules {
		if n.ConstantRHS() {
			if cfd.RHSViolates(t.Vals[a], n.TpA) {
				return violation{t: t, rule: n}, true
			}
			continue
		}
		if t.Vals[a].Null {
			continue // null agrees with everything (case 2.3)
		}
		if bucket == nil {
			bucket = g.Bucket(t)
		}
		var partner *relation.Tuple
		for _, id := range bucket {
			if id == t.ID {
				continue
			}
			t2 := e.rel.Tuple(id)
			if t2 == nil {
				continue
			}
			if !e.eqOnRHS(t, t2, a) && (partner == nil || t2.ID < partner.ID) {
				partner = t2
			}
		}
		if partner != nil {
			return violation{t: t, rule: n, partner: partner}, true
		}
	}
	return violation{}, false
}

// classCost returns the paper's Cost(t, B, v): the weighted cost of
// moving every member of eq(t, B) to value v (Fig. 5).
func (e *engine) classCost(k eqclass.Key, v relation.Value) float64 {
	var sum float64
	for _, m := range e.classes.Members(k) {
		t := e.rel.Tuple(m.T)
		if t == nil {
			continue
		}
		sum += e.scorer.ChangeInterned(e.dict(), t, m.A, v)
	}
	return sum
}

// classWeight returns the sum of attribute weights across eq(t, B),
// the tie-breaker for the null fallback in case 1.2 (§4.1).
func (e *engine) classWeight(k eqclass.Key) float64 {
	var sum float64
	for _, m := range e.classes.Members(k) {
		t := e.rel.Tuple(m.T)
		if t == nil {
			continue
		}
		sum += t.Weight(m.A)
	}
	return sum
}
