package repair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cost"
	"cfdclean/internal/relation"
)

func orderSchema() *relation.Schema {
	return relation.MustSchema("order",
		"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip")
}

// paperData loads Fig. 1(a) including its weights.
func paperData(t testing.TB) *relation.Relation {
	t.Helper()
	r := relation.New(orderSchema())
	rows := [][]string{
		{"a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"},
		{"a23", "H. Porter", "17.99", "610", "3456789", "Spruce", "PHI", "PA", "19014"},
		{"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "PHI", "PA", "10012"},
		{"a89", "Snow White", "18.99", "212", "5674322", "Broad", "PHI", "PA", "10012"},
	}
	weights := [][]float64{
		{1, 0.5, 0.5, 0.5, 0.5, 0.8, 0.8, 0.8, 0.8},
		{1, 0.5, 0.5, 0.5, 0.5, 0.6, 0.6, 0.6, 0.6},
		{1, 0.9, 0.9, 0.9, 0.9, 0.6, 0.1, 0.1, 0.8},
		{1, 0.6, 0.5, 0.9, 0.9, 0.1, 0.6, 0.6, 0.9},
	}
	for i, row := range rows {
		tp, err := r.InsertRow(row...)
		if err != nil {
			t.Fatal(err)
		}
		for a, w := range weights[i] {
			tp.SetWeight(a, w)
		}
	}
	return r
}

func paperCFDs(s *relation.Schema) []*cfd.CFD {
	phi1 := cfd.MustNew("phi1", s, []string{"AC", "PN"}, []string{"STR", "CT", "ST"},
		[]cfd.Cell{cfd.C("212"), cfd.W, cfd.W, cfd.C("NYC"), cfd.C("NY")},
		[]cfd.Cell{cfd.C("610"), cfd.W, cfd.W, cfd.C("PHI"), cfd.C("PA")},
		[]cfd.Cell{cfd.C("215"), cfd.W, cfd.W, cfd.C("PHI"), cfd.C("PA")},
	)
	phi2 := cfd.MustNew("phi2", s, []string{"zip"}, []string{"CT", "ST"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC"), cfd.C("NY")},
		[]cfd.Cell{cfd.C("19014"), cfd.C("PHI"), cfd.C("PA")},
	)
	phi3, _ := cfd.FD("phi3", s, []string{"id"}, []string{"name", "PR"})
	phi4, _ := cfd.FD("phi4", s, []string{"CT", "STR"}, []string{"zip"})
	return []*cfd.CFD{phi1, phi2, phi3, phi4}
}

// TestBatchPaperExample repairs the Fig. 1 database: t3 and t4 violate
// ϕ1 and ϕ2; the low weights on their CT/ST attributes make "set CT,ST to
// (NYC, NY)" the cheap fix, exactly the repair the paper proposes in
// Example 1.1.
func TestBatchPaperExample(t *testing.T) {
	d := paperData(t)
	s := d.Schema()
	sigma := cfd.NormalizeAll(paperCFDs(s))
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	for _, i := range []int{2, 3} {
		id := d.Tuples()[i].ID
		got := res.Repair.Tuple(id)
		if got.Vals[ct].Str != "NYC" || got.Vals[st].Str != "NY" {
			t.Errorf("tuple %d repaired to CT=%v ST=%v, want NYC/NY", id, got.Vals[ct], got.Vals[st])
		}
	}
	// The paper's repair touches exactly CT and ST of t3 and t4.
	if res.Changes != 4 {
		t.Errorf("Changes = %d, want 4", res.Changes)
	}
	if res.Cost <= 0 {
		t.Error("repair must have positive cost")
	}
	// Input untouched.
	if d.Tuples()[2].Vals[ct].Str != "PHI" {
		t.Error("Batch must not modify its input")
	}
}

// TestBatchCyclicCFDs reproduces the t5 scenario of Examples 1.1/4.1:
// with cyclic CFDs a RHS-only strategy oscillates, but BATCHREPAIR's
// equivalence classes terminate and produce a consistent repair.
func TestBatchCyclicCFDs(t *testing.T) {
	d := paperData(t)
	s := d.Schema()
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	// Clean t3/t4 per the paper's repair first.
	for _, i := range []int{2, 3} {
		id := d.Tuples()[i].ID
		d.Set(id, ct, relation.S("NYC"))
		d.Set(id, st, relation.S("NY"))
	}
	// Insert the problematic t5.
	t5, err := d.InsertRow("a45", "B. Good", "3.99", "215", "8983490", "Walnut", "NYC", "NY", "10012")
	if err != nil {
		t.Fatal(err)
	}
	for a, w := range []float64{1, 0.9, 0.9, 0.9, 0.9, 0.9, 0.5, 0.5, 0.5} {
		t5.SetWeight(a, w)
	}
	sigma := cfd.NormalizeAll(paperCFDs(s))
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair of cyclic CFDs must satisfy sigma")
	}
	if res.Resolutions == 0 {
		t.Error("expected at least one resolution")
	}
}

func TestBatchCleanInputIsNoop(t *testing.T) {
	d := paperData(t)
	s := d.Schema()
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	for _, i := range []int{2, 3} {
		id := d.Tuples()[i].ID
		d.Set(id, ct, relation.S("NYC"))
		d.Set(id, st, relation.S("NY"))
	}
	sigma := cfd.NormalizeAll(paperCFDs(s))
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changes != 0 || res.Cost != 0 {
		t.Errorf("clean input must not change: changes=%d cost=%v", res.Changes, res.Cost)
	}
}

func TestBatchUnsatisfiableSigma(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	d := relation.New(s)
	d.InsertRow("x", "y")
	c1 := cfd.MustNew("c1", s, []string{"a"}, []string{"b"}, []cfd.Cell{cfd.W, cfd.C("1")})
	c2 := cfd.MustNew("c2", s, []string{"a"}, []string{"b"}, []cfd.Cell{cfd.W, cfd.C("2")})
	if _, err := Batch(d, cfd.NormalizeAll([]*cfd.CFD{c1, c2}), nil); err == nil {
		t.Error("unsatisfiable sigma must be rejected")
	}
}

// TestBatchCase1_1 exercises the simplest path: a constant-RHS CFD fixes
// a typo'd city directly.
func TestBatchCase1_1(t *testing.T) {
	s := relation.MustSchema("r", "zip", "CT")
	d := relation.New(s)
	d.InsertRow("10012", "NYk") // typo
	d.InsertRow("10012", "NYC")
	φ := cfd.MustNew("zipct", s, []string{"zip"}, []string{"CT"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC")})
	sigma := φ.Normalize()
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Repair.Tuples()[0].Vals[1].Str; got != "NYC" {
		t.Errorf("repaired CT = %q, want NYC", got)
	}
	if res.Changes != 1 {
		t.Errorf("Changes = %d, want 1", res.Changes)
	}
}

// TestBatchCase1_2 forces conflicting constant targets so the repair must
// edit the LHS: tuple has zip=10012 (forcing NYC) and AC=215 (forcing
// PHI). One of the LHS attributes must change; FINDV pulls the
// semantically related zip 19014 from the sibling tuple sharing CT=PHI.
func TestBatchCase1_2(t *testing.T) {
	s := relation.MustSchema("r", "AC", "zip", "CT")
	d := relation.New(s)
	conflicted, _ := d.InsertRow("215", "10012", "PHI")
	d.InsertRow("215", "19014", "PHI") // donor of the related zip value
	phiZip := cfd.MustNew("zipct", s, []string{"zip"}, []string{"CT"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC")},
		[]cfd.Cell{cfd.C("19014"), cfd.C("PHI")})
	phiAC := cfd.MustNew("acct", s, []string{"AC"}, []string{"CT"},
		[]cfd.Cell{cfd.C("215"), cfd.C("PHI")})
	sigma := cfd.NormalizeAll([]*cfd.CFD{phiZip, phiAC})
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
	got := res.Repair.Tuple(conflicted.ID)
	// The consistent outcomes: zip changed away from 10012 (ideally to
	// 19014 via FINDV), or AC changed away from 215 with CT=NYC. With
	// unit weights, changing zip to the donor value is the cheap local
	// fix once CT=PHI is pinned by the AC rule.
	if got.Vals[1].Str == "10012" && got.Vals[0].Str == "215" {
		t.Errorf("conflict not resolved: %v", got)
	}
}

// TestBatchCase2Merge exercises variable-RHS repair: two tuples agree on
// the LHS but differ on the RHS; the class merge plus instantiation picks
// the value with the smaller change cost (the heavier-weighted side wins).
func TestBatchCase2Merge(t *testing.T) {
	s := relation.MustSchema("r", "k", "v")
	d := relation.New(s)
	t1, _ := d.InsertRow("key", "alpha")
	t2, _ := d.InsertRow("key", "alphx")
	t1.SetWeight(1, 0.9) // trust t1's value
	t2.SetWeight(1, 0.1)
	fd, _ := cfd.FD("fd", s, []string{"k"}, []string{"v"})
	sigma := fd.Normalize()
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
	v1 := res.Repair.Tuple(t1.ID).Vals[1].Str
	v2 := res.Repair.Tuple(t2.ID).Vals[1].Str
	if v1 != v2 {
		t.Fatalf("values not reconciled: %q vs %q", v1, v2)
	}
	if v1 != "alpha" {
		t.Errorf("reconciled to %q, want the trusted value alpha", v1)
	}
	if res.InstantiationRounds < 1 {
		t.Error("case 2 repair needs an instantiation round")
	}
}

// TestBatchThreeWayMerge checks that larger conflicting groups reconcile
// to a single value chosen by cost (majority with equal weights).
func TestBatchThreeWayMerge(t *testing.T) {
	s := relation.MustSchema("r", "k", "v")
	d := relation.New(s)
	d.InsertRow("key", "popular")
	d.InsertRow("key", "popular")
	d.InsertRow("key", "rare")
	fd, _ := cfd.FD("fd", s, []string{"k"}, []string{"v"})
	sigma := fd.Normalize()
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
	for _, tp := range res.Repair.Tuples() {
		if tp.Vals[1].Str != "popular" {
			t.Errorf("tuple %d = %q, want popular (cheapest instantiation)", tp.ID, tp.Vals[1].Str)
		}
	}
}

// TestBatchRandomFDsAlwaysRepairs is the integration property behind
// Theorem 4.2: on random databases with random noise, Batch terminates
// and its output satisfies sigma.
func TestBatchRandomFDsAlwaysRepairs(t *testing.T) {
	s := relation.MustSchema("r", "a", "b", "c")
	fd1, _ := cfd.FD("fd1", s, []string{"a"}, []string{"b"})
	phi := cfd.MustNew("phi", s, []string{"b"}, []string{"c"},
		[]cfd.Cell{cfd.C("b0"), cfd.C("c0")},
		[]cfd.Cell{cfd.C("b1"), cfd.C("c1")})
	sigma := cfd.NormalizeAll([]*cfd.CFD{fd1, phi})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := relation.New(s)
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			a := "a" + itoa(rng.Intn(4))
			b := "b" + itoa(rng.Intn(3))
			c := "c" + itoa(rng.Intn(3))
			d.InsertRow(a, b, c)
		}
		res, err := Batch(d, sigma, nil)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return cfd.Satisfies(res.Repair, sigma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// TestBatchUnweighted verifies §3.2 remark 1: without weight information
// the algorithm still produces a consistent repair.
func TestBatchUnweighted(t *testing.T) {
	s := relation.MustSchema("r", "zip", "CT", "ST")
	d := relation.New(s)
	d.InsertRow("10012", "PHI", "PA")
	d.InsertRow("10012", "NYC", "NY")
	φ := cfd.MustNew("c", s, []string{"zip"}, []string{"CT", "ST"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC"), cfd.C("NY")})
	sigma := φ.Normalize()
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("unweighted repair must satisfy sigma")
	}
}

// TestBatchNoDepGraph checks the ablation switch produces a valid repair.
func TestBatchNoDepGraph(t *testing.T) {
	d := paperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	res, err := Batch(d, sigma, &Options{NoDepGraph: true, MaxScan: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("no-depgraph repair must satisfy sigma")
	}
}

// TestBatchNullFallback: an isolated conflicted tuple with no donor for
// FINDV gets null (the "cannot be made certain" outcome).
func TestBatchNullFallback(t *testing.T) {
	s := relation.MustSchema("r", "AC", "zip", "CT")
	d := relation.New(s)
	conflicted, _ := d.InsertRow("215", "10012", "PHI")
	phiZip := cfd.MustNew("zipct", s, []string{"zip"}, []string{"CT"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC")})
	phiAC := cfd.MustNew("acct", s, []string{"AC"}, []string{"CT"},
		[]cfd.Cell{cfd.C("215"), cfd.C("PHI")})
	sigma := cfd.NormalizeAll([]*cfd.CFD{phiZip, phiAC})
	res, err := Batch(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
	got := res.Repair.Tuple(conflicted.ID)
	hasNull := false
	for _, v := range got.Vals {
		if v.Null {
			hasNull = true
		}
	}
	if !hasNull {
		// Either an LHS became null, or a consistent constant resolution
		// was found; with no donors, null is the expected outcome on one
		// of AC/zip.
		t.Logf("repair: %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	w := o.withDefaults()
	if w.CostModel == nil || w.MaxScan != 64 {
		t.Error("nil options must default")
	}
	w2 := (&Options{MaxScan: -5}).withDefaults()
	if w2.MaxScan != 0 {
		t.Error("negative MaxScan must mean no cap")
	}
	w3 := (&Options{MaxScan: 7, CostModel: cost.Default()}).withDefaults()
	if w3.MaxScan != 7 {
		t.Error("explicit MaxScan must be kept")
	}
}
