package repair

import (
	"sort"
	"sync"
	"sync/atomic"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// This file is the component-parallel schedule of BATCHREPAIR. The
// violation graph (tuples as nodes, an edge per shared violation — see
// cfd.VioStore.Components) decomposes the dirty database into connected
// components that share no violation, so the greedy repair loop can run
// on each component independently. The schedule is deterministic by
// construction, not by locking:
//
//   - every component is repaired against a *pristine* view of the
//     database: a worker journals its writes and rolls them back before
//     taking the next component, so what a component's repair observes
//     never depends on which worker ran it or what ran before it;
//   - each worker owns a full engine — its own clone of the relation,
//     violation store, equivalence classes, cost memo and support
//     indices — so nothing is shared but immutable inputs;
//   - the per-component fix lists are merged into the result in
//     canonical component order (components by smallest member, cells by
//     (tuple, attribute)), making the merged state independent of
//     completion order;
//   - the greedy loop itself visits dirty tuples in sorted id order and
//     ranks FINDV candidates in sorted value order, so a component's fix
//     list is a pure function of the pristine database and Σ.
//
// Repairing a component can, rarely, cascade outside it: committing a
// constant to an equivalence class can surface a new violation against a
// previously clean tuple that another component also reaches. The merge
// resolves write conflicts deterministically (later component wins) and
// Batch runs a residual sequential pass over whatever violations remain
// after the merge, so the engine's contract — the result satisfies Σ —
// is unconditional.

// cellFix is one net cell change a component repair resolved: the value
// the cell holds after the component's repair, against pristine state.
type cellFix struct {
	id relation.TupleID
	a  int
	v  relation.Value
}

// compStats aggregates per-component counters into the run's Result.
type compStats struct {
	resolutions int
	rounds      int
}

// seedFor returns the embedded-FD groups tuple id currently violates,
// building the tuple→groups map from the store on first use.
func (e *engine) seedFor(id relation.TupleID) []int {
	if e.seedGroups == nil {
		e.seedGroups = make(map[relation.TupleID][]int)
		e.store.EachViolation(func(gi int, v cfd.Violation) {
			e.seedGroups[v.T] = appendUnique(e.seedGroups[v.T], gi)
		})
	}
	return e.seedGroups[id]
}

// repairComponent runs the full BATCHREPAIR loop (Fig. 4: resolve until
// the dirty sets drain, instantiate, repeat) seeded with one violation-
// graph component, collects the component's net cell fixes, and rolls
// the working copy back to its pristine state. budget bounds the
// resolutions of this component alone (Theorem 4.2's termination
// measure, applied per component).
func (e *engine) repairComponent(comp []relation.TupleID, budget int) ([]cellFix, compStats, error) {
	e.recording = true
	for _, id := range comp {
		for _, gi := range e.seedFor(id) {
			e.dirty[gi][id] = true
		}
	}
	var st compStats
	start := e.resolutions
	limit := e.resolutions + budget
	for {
		if err := e.mainLoop(limit); err != nil {
			e.rollback()
			return nil, st, err
		}
		st.rounds++
		if !e.instantiate() {
			break
		}
	}
	st.resolutions = e.resolutions - start
	fixes := e.collectFixes()
	e.rollback()
	return fixes, st, nil
}

// collectFixes reduces the write journal to net per-cell changes against
// pristine state, in canonical (tuple id, attribute) order. Cells whose
// final value equals their pristine value are dropped.
func (e *engine) collectFixes() []cellFix {
	type cell struct {
		id relation.TupleID
		a  int
	}
	seen := make(map[cell]bool, len(e.writes))
	var fixes []cellFix
	for _, w := range e.writes {
		c := cell{w.id, w.a}
		if seen[c] {
			continue
		}
		seen[c] = true
		t := e.rel.Tuple(w.id)
		if t == nil {
			continue // unreachable: Batch never deletes tuples
		}
		// w.old of the first write to a cell is its pristine value.
		if cur := t.Vals[w.a]; !relation.StrictEq(cur, w.old) {
			fixes = append(fixes, cellFix{id: w.id, a: w.a, v: cur})
		}
	}
	sort.Slice(fixes, func(i, j int) bool {
		if fixes[i].id != fixes[j].id {
			return fixes[i].id < fixes[j].id
		}
		return fixes[i].a < fixes[j].a
	})
	return fixes
}

// rollback restores every journaled cell to its pristine value and
// resets the per-component scratch state (write journal, dirty sets,
// equivalence classes), returning the engine to the state it was in
// before the component repair began. The violation store maintains
// itself back through the relation's journal.
func (e *engine) rollback() {
	e.recording = false
	type cell struct {
		id relation.TupleID
		a  int
	}
	restored := make(map[cell]bool, len(e.writes))
	for _, w := range e.writes {
		c := cell{w.id, w.a}
		if restored[c] {
			continue
		}
		restored[c] = true
		if t := e.rel.Tuple(w.id); t != nil {
			e.setStored(t, w.a, w.old)
		}
	}
	e.writes = e.writes[:0]
	for i := range e.dirty {
		clear(e.dirty[i])
	}
	e.classes.Reset()
}

// runComponents repairs every component and returns the per-component
// fix lists, index-aligned with comps. With more than one worker, each
// worker builds its own engine over a clone of the (pristine) working
// copy and pulls components off a shared counter; results land in the
// index-aligned slice, so scheduling never shows in the output.
func (e *engine) runComponents(comps [][]relation.TupleID, budget int) ([][]cellFix, compStats, error) {
	fixes := make([][]cellFix, len(comps))
	stats := make([]compStats, len(comps))
	nw := e.opts.Workers
	if nw > len(comps) {
		nw = len(comps)
	}
	// A worker is not free: it clones the relation and runs a full
	// detection scan before repairing anything. Cap the worker count by
	// the violating-tuple volume so a large, mostly-clean database with
	// a handful of dirty tuples runs sequentially instead of paying
	// cores × O(|D|) setup for milliseconds of repair work. The cap is a
	// pure function of the input, so determinism is unaffected (and the
	// output is identical at every worker count anyway).
	totalDirty := 0
	for _, comp := range comps {
		totalDirty += len(comp)
	}
	if workCap := (totalDirty + 31) / 32; nw > workCap {
		nw = workCap
	}
	if nw <= 1 {
		for i, comp := range comps {
			fl, st, err := e.repairComponent(comp, budget)
			if err != nil {
				return nil, compStats{}, err
			}
			fixes[i], stats[i] = fl, st
		}
	} else {
		var next atomic.Int64
		errs := make([]error, nw)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Per-worker engine: own clone, store, classes, memo.
				// The worker's store scan stays sequential — the
				// parallelism budget is already spent on components.
				wopts := e.opts
				wopts.Workers = 1
				we, err := newEngine(e.rel, e.sigma, wopts)
				if err != nil {
					errs[w] = err
					return
				}
				defer we.store.Close()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(comps) {
						return
					}
					fl, st, err := we.repairComponent(comps[i], budget)
					if err != nil {
						errs[w] = err
						return
					}
					fixes[i], stats[i] = fl, st
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, compStats{}, err
			}
		}
	}
	var total compStats
	for _, st := range stats {
		total.resolutions += st.resolutions
		total.rounds += st.rounds
	}
	return fixes, total, nil
}
