package cost

import (
	"math"
	"testing"
	"testing/quick"

	"cfdclean/internal/relation"
	"cfdclean/internal/strdist"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestPaperExample31 reproduces the arithmetic of Example 3.1: resolving
// t3's violations by (1) changing t3[CT,ST] to (NYC, NY) costs
// 3/3·0.1 + 3/3·0.1 = 0.2, while (2) changing t3[zip] to 19014 and t3[AC]
// to 215 costs 1/3·0.9 + 2/5·0.8 = 0.7 (the paper prints 0.6 using the
// same weights; the option ranking — (1) cheaper than (2) — is what the
// model must deliver).
func TestPaperExample31(t *testing.T) {
	s := relation.MustSchema("order",
		"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip")
	t3 := relation.NewTuple(3,
		"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "PHI", "PA", "10012")
	for i, w := range []float64{1, 0.9, 0.9, 0.9, 0.9, 0.6, 0.1, 0.1, 0.8} {
		t3.SetWeight(i, w)
	}
	m := Default()
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	ac, zip := s.MustIndex("AC"), s.MustIndex("zip")

	opt1 := m.Change(t3, ct, relation.S("NYC")) + m.Change(t3, st, relation.S("NY"))
	if !almostEq(opt1, 0.2) {
		t.Errorf("option 1 cost = %v, want 0.2", opt1)
	}
	// AC: 212 -> 215 is 1 edit over 3 chars at weight 0.9 = 0.3;
	// zip: 10012 -> 19014 is 2 edits over 5 chars at weight 0.8 = 0.32.
	opt2 := m.Change(t3, ac, relation.S("215")) + m.Change(t3, zip, relation.S("19014"))
	if opt1 >= opt2 {
		t.Errorf("model must favor option 1: opt1=%v opt2=%v", opt1, opt2)
	}
	acCost := m.Change(t3, ac, relation.S("215"))
	if !almostEq(acCost, 0.9/3) {
		t.Errorf("AC change cost = %v, want 0.3", acCost)
	}
	zipCost := m.Change(t3, zip, relation.S("19014"))
	if !almostEq(zipCost, 0.8*2/5) {
		t.Errorf("zip change cost = %v, want 0.32", zipCost)
	}
}

func TestDistNullHandling(t *testing.T) {
	m := Default()
	if m.Dist(relation.NullValue, relation.NullValue) != 0 {
		t.Error("null-to-null must cost 0")
	}
	if m.Dist(relation.S("x"), relation.NullValue) != 1 {
		t.Error("constant-to-null must cost 1")
	}
	if m.Dist(relation.NullValue, relation.S("x")) != 1 {
		t.Error("null-to-constant must cost 1")
	}
	if m.Dist(relation.S("abc"), relation.S("abc")) != 0 {
		t.Error("identical values must cost 0")
	}
}

func TestDistRange(t *testing.T) {
	m := Default()
	f := func(a, b string) bool {
		d := m.Dist(relation.S(a), relation.S(b))
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChangeUsesWeight(t *testing.T) {
	m := Default()
	tp := relation.NewTuple(1, "abc")
	tp.SetWeight(0, 0.5)
	got := m.Change(tp, 0, relation.S("abd"))
	if !almostEq(got, 0.5*1.0/3) {
		t.Errorf("Change = %v, want %v", got, 0.5/3)
	}
	// Unweighted tuples behave as weight 1 (§3.2 remark 1).
	tp2 := relation.NewTuple(2, "abc")
	if !almostEq(m.Change(tp2, 0, relation.S("abd")), 1.0/3) {
		t.Error("default weight must be 1")
	}
}

func TestChangeFrom(t *testing.T) {
	m := Default()
	tp := relation.NewTuple(1, "new")
	got := m.ChangeFrom(tp, 0, relation.S("old"), relation.S("olX"))
	if !almostEq(got, 1.0/3) {
		t.Errorf("ChangeFrom = %v, want 1/3", got)
	}
}

func TestTupleCost(t *testing.T) {
	m := Default()
	old := relation.NewTuple(1, "abc", "same", "xyz")
	new := relation.NewTuple(1, "abd", "same", "xyz")
	c, err := m.Tuple(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c, 1.0/3) {
		t.Errorf("Tuple cost = %v, want 1/3", c)
	}
	if _, err := m.Tuple(old, relation.NewTuple(1, "a")); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestRepairCost(t *testing.T) {
	m := Default()
	s := relation.MustSchema("r", "a")
	d := relation.New(s)
	t1, _ := d.InsertRow("abc")
	t2, _ := d.InsertRow("def")
	repr := d.Clone()
	repr.Set(t1.ID, 0, relation.S("abd"))
	c, err := m.Repair(repr, d)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c, 1.0/3) {
		t.Errorf("Repair cost = %v, want 1/3", c)
	}
	_ = t2
	// Tuples missing from the repair are skipped, not an error.
	repr.Delete(t2.ID)
	if _, err := m.Repair(repr, d); err != nil {
		t.Errorf("missing tuple must be tolerated: %v", err)
	}
}

func TestDif(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	d1 := relation.New(s)
	t1, _ := d1.InsertRow("x", "y")
	d2 := d1.Clone()
	if Dif(d1, d2) != 0 {
		t.Error("identical relations must have dif 0")
	}
	d2.Set(t1.ID, 0, relation.S("z"))
	if Dif(d1, d2) != 1 {
		t.Errorf("Dif = %d, want 1", Dif(d1, d2))
	}
	// Null vs constant is a difference (StrictEq, not SQL Eq).
	d2.Set(t1.ID, 1, relation.NullValue)
	if Dif(d1, d2) != 2 {
		t.Errorf("Dif with null = %d, want 2", Dif(d1, d2))
	}
	// Missing tuples count their arity, both directions.
	d3 := relation.New(s)
	if Dif(d1, d3) != 2 || Dif(d3, d1) != 2 {
		t.Error("missing tuples must count their arity")
	}
}

func TestDifSymmetric(t *testing.T) {
	s := relation.MustSchema("r", "a")
	f := func(xs []string, flip uint) bool {
		d1 := relation.New(s)
		for _, x := range xs {
			d1.MustInsert(relation.NewTuple(0, x))
		}
		d2 := d1.Clone()
		if len(xs) > 0 {
			id := d1.Tuples()[int(flip%uint(len(xs)))].ID
			d2.Set(id, 0, relation.S("flipped"))
		}
		return Dif(d1, d2) == Dif(d2, d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCells(t *testing.T) {
	s := relation.MustSchema("r", "a", "b", "c")
	d := relation.New(s)
	d.InsertRow("1", "2", "3")
	d.InsertRow("4", "5", "6")
	if Cells(d) != 6 {
		t.Errorf("Cells = %d, want 6", Cells(d))
	}
}

func TestCustomMetric(t *testing.T) {
	m := New(strdist.Func(func(a, b string) int {
		if a == b {
			return 0
		}
		return len(a) + len(b) // silly but valid
	}))
	d := m.Dist(relation.S("ab"), relation.S("cd"))
	if !almostEq(d, 2) { // (2+2)/max(2,2)
		t.Errorf("custom metric Dist = %v, want 2", d)
	}
}
