package cost

import (
	"testing"

	"cfdclean/internal/relation"
)

// The interned memo paths (PR 1's hot path): ChangeInterned and the
// per-worker Scratch must return exactly what the unmemoized model
// returns, bind to the first dictionary they see, and bypass the memo —
// never serve a stale distance — for foreign dictionaries and invalid
// ids.

func internedFixture(t *testing.T) (*relation.Relation, *relation.Tuple) {
	t.Helper()
	r := relation.New(relation.MustSchema("r", "A", "B"))
	tu, err := r.InsertRow("walnut", "spruce")
	if err != nil {
		t.Fatal(err)
	}
	// Candidate values must be interned for the memo key to exist.
	if _, err := r.InsertRow("wallnut", "bruce"); err != nil {
		t.Fatal(err)
	}
	return r, tu
}

func TestChangeInternedMatchesChange(t *testing.T) {
	r, tu := internedFixture(t)
	m := Default()
	for _, cand := range []relation.Value{
		relation.S("wallnut"), relation.S("walnut"), relation.NullValue,
		relation.S("never-interned"),
	} {
		want := m.Change(tu, 0, cand)
		// Twice: miss then memo hit must agree.
		for pass := 0; pass < 2; pass++ {
			if got := m.ChangeInterned(r.Dict(), tu, 0, cand); got != want {
				t.Fatalf("ChangeInterned(%v) pass %d = %v, want %v", cand, pass, got, want)
			}
		}
	}
	old := relation.S("spruce")
	want := m.ChangeFrom(tu, 1, old, relation.S("bruce"))
	if got := m.ChangeFromInterned(r.Dict(), tu, 1, old, relation.S("bruce")); got != want {
		t.Fatalf("ChangeFromInterned = %v, want %v", got, want)
	}

	// A zero weight short-circuits to 0 without touching the memo.
	tu.SetWeight(0, 0)
	if got := m.ChangeInterned(r.Dict(), tu, 0, relation.S("wallnut")); got != 0 {
		t.Fatalf("zero-weight change = %v", got)
	}
}

func TestModelMemoBindsToFirstDict(t *testing.T) {
	r1, t1 := internedFixture(t)
	m := Default()
	bound := m.ChangeInterned(r1.Dict(), t1, 0, relation.S("wallnut"))

	// A different relation whose dictionary assigns the same ids to
	// different strings must not hit r1's cached distances.
	r2 := relation.New(relation.MustSchema("r", "A", "B"))
	t2, err := r2.InsertRow("table", "chair")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.InsertRow("cable", "hair"); err != nil {
		t.Fatal(err)
	}
	want := m.Change(t2, 0, relation.S("cable"))
	if got := m.ChangeInterned(r2.Dict(), t2, 0, relation.S("cable")); got != want {
		t.Fatalf("foreign-dict ChangeInterned = %v, want %v", got, want)
	}
	// And the bound dictionary still answers correctly afterwards.
	if got := m.ChangeInterned(r1.Dict(), t1, 0, relation.S("wallnut")); got != bound {
		t.Fatalf("bound-dict answer drifted: %v != %v", got, bound)
	}
}

func TestScratchMatchesModel(t *testing.T) {
	r, tu := internedFixture(t)
	m := Default()
	s := m.Scratch()
	if s.Model() != m {
		t.Fatal("Scratch must expose its model")
	}
	for _, cand := range []relation.Value{
		relation.S("wallnut"), relation.S("walnut"), relation.NullValue,
	} {
		want := m.Change(tu, 0, cand)
		for pass := 0; pass < 2; pass++ { // miss, then local-memo hit
			if got := s.ChangeInterned(r.Dict(), tu, 0, cand); got != want {
				t.Fatalf("Scratch.ChangeInterned(%v) pass %d = %v, want %v", cand, pass, got, want)
			}
		}
	}
	old := relation.S("spruce")
	want := m.ChangeFrom(tu, 1, old, relation.S("bruce"))
	if got := s.ChangeFromInterned(r.Dict(), tu, 1, old, relation.S("bruce")); got != want {
		t.Fatalf("Scratch.ChangeFromInterned = %v, want %v", got, want)
	}
	tu.SetWeight(1, 0)
	if got := s.ChangeFromInterned(r.Dict(), tu, 1, old, relation.S("bruce")); got != 0 {
		t.Fatalf("zero-weight scratch change = %v", got)
	}

	// Foreign dictionary: bypass, not stale hit.
	r2, t2 := internedFixture(t)
	if want, got := m.Change(t2, 0, relation.S("wallnut")), s.ChangeInterned(r2.Dict(), t2, 0, relation.S("wallnut")); got != want {
		t.Fatalf("scratch foreign-dict = %v, want %v", got, want)
	}
}
