// Package cost implements the paper's cost model (§3.2): the cost of
// changing attribute t[A] from v to v' is
//
//	cost(v, v') = w(t, A) · dis(v, v') / max(|v|, |v'|)
//
// where w(t, A) ∈ [0,1] is the user's confidence in the accuracy of the
// original value and dis is the Damerau–Levenshtein metric by default.
// The model extends pointwise to tuples and repairs, and the package also
// provides dif — the attribute-level difference count used to assess
// repair accuracy (§1, §3.3).
package cost

import (
	"fmt"
	"sync"

	"cfdclean/internal/relation"
	"cfdclean/internal/strdist"
)

// memoCap bounds the interned-pair distance memo; beyond it, distances are
// computed without caching rather than growing memory unboundedly.
const memoCap = 1 << 20

// Model carries the distance metric; the zero value is not usable, call
// Default or New. Models memoize normalized distances between interned
// value pairs under a fixed-width integer key, so the repair loops — which
// re-score the same (stored value, candidate) pairs over and over — pay
// for each string-distance computation once. The memo is safe for
// concurrent use; the parallel candidate evaluation of INCREPAIR shares
// one model across workers.
type Model struct {
	metric strdist.Metric

	mu   sync.Mutex
	memo map[uint64]float64
	// dict is the dictionary the memo's id keys are relative to, bound on
	// first interned call. Ids from other dictionaries name different
	// strings, so calls against a different dict bypass the memo instead
	// of returning a stale distance. (A relation and its clones share one
	// id space only until they diverge, so pointer identity is the rule.)
	dict *relation.Dict
}

// Default returns a model with the paper's DL metric.
func Default() *Model { return New(strdist.DL) }

// New returns a model with a custom metric (§3.2 remark 2).
func New(m strdist.Metric) *Model {
	return &Model{metric: m, memo: make(map[uint64]float64)}
}

// Dist returns the normalized distance dis(v,v')/max(|v|,|v'|) between two
// values. Changing to or from null costs the maximum distance 1 (the value
// is entirely replaced by "unknown"), and null-to-null costs 0.
func (m *Model) Dist(v, vp relation.Value) float64 {
	if v.Null && vp.Null {
		return 0
	}
	if v.Null || vp.Null {
		return 1
	}
	return strdist.Normalized(m.metric, v.Str, vp.Str)
}

// Change returns cost(v, v') for attribute a of tuple t: the weighted
// normalized distance from t's current value v to v'. The more accurate
// the original value (higher weight) and the more distant the new value,
// the higher the cost.
func (m *Model) Change(t *relation.Tuple, a int, vp relation.Value) float64 {
	return t.Weight(a) * m.Dist(t.Vals[a], vp)
}

// ChangeFrom returns the cost of changing attribute a of t from an
// explicit old value (used when t's stored value has already been
// overwritten during repair bookkeeping).
func (m *Model) ChangeFrom(t *relation.Tuple, a int, old, vp relation.Value) float64 {
	return t.Weight(a) * m.Dist(old, vp)
}

// distIDs is Dist memoized under the interned-pair key (ia, ib), valid
// relative to dict. Either id being InvalidID (value absent from the
// dictionary), or dict differing from the dictionary the memo is bound
// to, bypasses the memo.
func (m *Model) distIDs(dict *relation.Dict, ia, ib relation.ValueID, va, vb relation.Value) float64 {
	if ia == relation.InvalidID || ib == relation.InvalidID || m.memo == nil || dict == nil {
		return m.Dist(va, vb)
	}
	key := relation.PairKey(ia, ib)
	m.mu.Lock()
	if m.dict == nil {
		m.dict = dict
	}
	bound := m.dict == dict
	d, ok := m.memo[key]
	m.mu.Unlock()
	if !bound {
		return m.Dist(va, vb)
	}
	if ok {
		return d
	}
	d = m.Dist(va, vb)
	m.mu.Lock()
	if len(m.memo) < memoCap {
		m.memo[key] = d
	}
	m.mu.Unlock()
	return d
}

// ChangeInterned is Change with the distance memoized by interned ids:
// t's stored id (when t is relation-owned) paired with vp's id in dict.
func (m *Model) ChangeInterned(dict *relation.Dict, t *relation.Tuple, a int, vp relation.Value) float64 {
	w := t.Weight(a)
	if w == 0 {
		return 0
	}
	return w * m.distIDs(dict, t.IDAt(a), dict.LookupValue(vp), t.Vals[a], vp)
}

// ChangeFromInterned is ChangeFrom with the distance memoized by the
// interned ids of old and vp in dict.
func (m *Model) ChangeFromInterned(dict *relation.Dict, t *relation.Tuple, a int, old, vp relation.Value) float64 {
	w := t.Weight(a)
	if w == 0 {
		return 0
	}
	return w * m.distIDs(dict, dict.LookupValue(old), dict.LookupValue(vp), old, vp)
}

// scratchCap bounds each per-worker local memo independently of the
// shared one.
const scratchCap = 1 << 18

// Scratch is a per-worker view of a Model: a lock-free local distance
// memo in front of the shared (mutex-guarded) one. Repair workers score
// the same (stored value, candidate) pairs over and over within their
// own partition of the work, so after the first miss every repeat hit
// is an uncontended map read. The miss path goes through Model.distIDs,
// which consults and feeds the shared memo only when the caller's
// dictionary is the one the model is bound to: INCREPAIR's candidate
// workers all score against one relation and genuinely share, while the
// component-parallel batch workers each own a cloned relation (own
// Dict), so at most one of them matches the binding and the rest warm
// purely local memos — correct either way, shared only when pointer-
// identical dictionaries make it sound. A Scratch must not be shared
// between goroutines; the Model underneath may be.
type Scratch struct {
	m     *Model
	local map[uint64]float64
	// dict is the dictionary the local keys are relative to, bound on
	// first use exactly like the shared memo's binding.
	dict *relation.Dict
}

// Scratch returns a fresh per-worker scratch over m.
func (m *Model) Scratch() *Scratch {
	return &Scratch{m: m, local: make(map[uint64]float64)}
}

// Model returns the shared model underneath.
func (s *Scratch) Model() *Model { return s.m }

func (s *Scratch) distIDs(dict *relation.Dict, ia, ib relation.ValueID, va, vb relation.Value) float64 {
	if ia == relation.InvalidID || ib == relation.InvalidID || dict == nil {
		return s.m.Dist(va, vb)
	}
	if s.dict == nil {
		s.dict = dict
	}
	if s.dict != dict {
		return s.m.Dist(va, vb)
	}
	key := relation.PairKey(ia, ib)
	if d, ok := s.local[key]; ok {
		return d
	}
	d := s.m.distIDs(dict, ia, ib, va, vb)
	if len(s.local) < scratchCap {
		s.local[key] = d
	}
	return d
}

// ChangeInterned is Model.ChangeInterned through the worker-local memo.
func (s *Scratch) ChangeInterned(dict *relation.Dict, t *relation.Tuple, a int, vp relation.Value) float64 {
	w := t.Weight(a)
	if w == 0 {
		return 0
	}
	return w * s.distIDs(dict, t.IDAt(a), dict.LookupValue(vp), t.Vals[a], vp)
}

// ChangeFromInterned is Model.ChangeFromInterned through the worker-local
// memo.
func (s *Scratch) ChangeFromInterned(dict *relation.Dict, t *relation.Tuple, a int, old, vp relation.Value) float64 {
	w := t.Weight(a)
	if w == 0 {
		return 0
	}
	return w * s.distIDs(dict, dict.LookupValue(old), dict.LookupValue(vp), old, vp)
}

// Tuple returns the cost of changing tuple old into new: the sum of
// cost(old[A], new[A]) over the attributes whose value is modified.
// StrictEq decides modification: replacing a constant by null counts.
func (m *Model) Tuple(old, new *relation.Tuple) (float64, error) {
	if len(old.Vals) != len(new.Vals) {
		return 0, fmt.Errorf("cost: tuples have arity %d and %d", len(old.Vals), len(new.Vals))
	}
	var sum float64
	for a := range old.Vals {
		if !relation.StrictEq(old.Vals[a], new.Vals[a]) {
			sum += m.Change(old, a, new.Vals[a])
		}
	}
	return sum, nil
}

// Repair returns cost(Repr, D): the total cost of modifying the tuples of
// d into the correspondingly-identified tuples of repr. Tuples present in
// only one of the two relations are ignored (repairs preserve tuple ids).
func (m *Model) Repair(repr, d *relation.Relation) (float64, error) {
	var sum float64
	for _, old := range d.Tuples() {
		nt := repr.Tuple(old.ID)
		if nt == nil {
			continue
		}
		c, err := m.Tuple(old, nt)
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum, nil
}

// Dif counts the attribute-level differences between two relations with
// matching tuple ids — the paper's dif(D1, D2) used in both the accuracy
// bound |dif(Repr, Dopt)|/|Dopt| and the precision/recall computation
// (§7.1). Tuples missing from either side contribute their full arity.
func Dif(d1, d2 *relation.Relation) int {
	n := 0
	for _, t1 := range d1.Tuples() {
		t2 := d2.Tuple(t1.ID)
		if t2 == nil {
			n += len(t1.Vals)
			continue
		}
		for a := range t1.Vals {
			if !relation.StrictEq(t1.Vals[a], t2.Vals[a]) {
				n++
			}
		}
	}
	for _, t2 := range d2.Tuples() {
		if d1.Tuple(t2.ID) == nil {
			n += len(t2.Vals)
		}
	}
	return n
}

// Cells returns the total number of attribute values in d — |D| measured
// at attribute level, the denominator of the accuracy ratio.
func Cells(d *relation.Relation) int {
	return d.Size() * d.Schema().Arity()
}
