package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quick is small enough for unit tests while still exercising every code
// path of the harness.
var quick = Config{Size: 400, Seed: 3, Quick: true}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func checkTable(t *testing.T, table *Table, wantCols int) {
	t.Helper()
	if len(table.Header) != wantCols {
		t.Fatalf("header has %d columns, want %d: %v", len(table.Header), wantCols, table.Header)
	}
	if len(table.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i, r := range table.Rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d cells, want %d", i, len(r), wantCols)
		}
		for _, c := range r {
			parseCell(t, c)
		}
	}
}

func TestFig8(t *testing.T) {
	table, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, 5)
	// Accuracy values are percentages.
	for _, r := range table.Rows {
		for _, c := range r[1:] {
			if v := parseCell(t, c); v < 0 || v > 100 {
				t.Fatalf("accuracy %v outside [0,100]", v)
			}
		}
	}
}

func TestFig9And10(t *testing.T) {
	for name, fn := range map[string]func(Config) (*Table, error){
		"fig9": Fig9, "fig10": Fig10,
	} {
		table, err := fn(quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkTable(t, table, 5)
	}
}

func TestFig11(t *testing.T) {
	table, err := Fig11(Config{Size: 200, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, 2)
	// Sizes must ascend.
	var prev float64 = -1
	for _, r := range table.Rows {
		n := parseCell(t, r[0])
		if n <= prev {
			t.Fatalf("sizes not ascending: %v", table.Rows)
		}
		prev = n
	}
}

func TestFig12(t *testing.T) {
	table, err := Fig12(Config{Size: 300, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, 3)
	// The paper's headline: IncRepair beats BatchRepair on small ΔD.
	// At toy sizes timing is noisy, so only check the columns parse and
	// the insert counts ascend.
	var prev float64 = -1
	for _, r := range table.Rows {
		n := parseCell(t, r[0])
		if n <= prev {
			t.Fatalf("insert counts not ascending: %v", table.Rows)
		}
		prev = n
	}
}

func TestFig13(t *testing.T) {
	table, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, 5)
}

func TestFig14And15(t *testing.T) {
	t14, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, t14, 5)
	t15, err := Fig15(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, t15, 3)
	// The const-share sweep covers 20%–80%.
	first := parseCell(t, t14.Rows[0][0])
	last := parseCell(t, t14.Rows[len(t14.Rows)-1][0])
	if first != 20 || last != 80 {
		t.Fatalf("const share sweep spans %v–%v, want 20–80", first, last)
	}
}

func TestAllRegistered(t *testing.T) {
	for f := 8; f <= 15; f++ {
		if All[f] == nil {
			t.Fatalf("figure %d missing from All", f)
		}
	}
	if len(All) != 8 {
		t.Fatalf("All has %d entries, want 8", len(All))
	}
}

func TestTablePrintAndTSV(t *testing.T) {
	table := &Table{
		Figure: 8, Title: "demo",
		Header: []string{"x", "y"},
		Rows:   [][]string{{"1", "2.0"}, {"10", "3.5"}},
	}
	var buf bytes.Buffer
	table.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 8: demo") {
		t.Fatalf("Print output: %q", buf.String())
	}
	buf.Reset()
	table.TSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x\ty" {
		t.Fatalf("TSV output: %q", buf.String())
	}
}
