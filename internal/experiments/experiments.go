// Package experiments regenerates every figure of the paper's evaluation
// (§7.2, Figs. 8–15). Each Fig function runs the workload the paper
// describes and returns a Table whose rows mirror the published series;
// cmd/experiments prints them and bench_test.go wraps them in testing.B
// benchmarks. Absolute runtimes differ from the paper's 2007 hardware —
// what must match is the shape: who wins, by roughly what factor, and
// how the curves move with noise rate, data size, and violation mix
// (EXPERIMENTS.md records paper-vs-measured for each figure).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
	"cfdclean/internal/increpair"
	"cfdclean/internal/metrics"
	"cfdclean/internal/relation"
	"cfdclean/internal/repair"
)

// Config scales an experiment run. The paper uses 60k tuples for the
// accuracy figures and up to 300k for the scalability ones; smaller sizes
// reproduce the same shapes in minutes.
type Config struct {
	// Size is the base database size (the paper: 60,000).
	Size int
	// Seed drives data generation.
	Seed int64
	// Quick thins parameter sweeps (every other point) for smoke runs.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table is one figure's data: a header and one row per x-axis point.
type Table struct {
	// Figure and Title identify the experiment.
	Figure int
	Title  string
	// Header names the columns; Rows hold formatted cells.
	Header []string
	Rows   [][]string
}

// Print writes the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure %d: %s\n", t.Figure, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
}

// TSV writes the table as tab-separated values (for plotting).
func (t *Table) TSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
}

func pct(x float64) string        { return fmt.Sprintf("%.1f", 100*x) }
func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// result bundles one repair run's quality and runtime.
type result struct {
	q   *metrics.Quality
	dur time.Duration
}

func runBatch(ds *gen.Dataset, sigma []*cfd.Normal) (result, error) {
	t0 := time.Now()
	res, err := repair.Batch(ds.Dirty, sigma, nil)
	if err != nil {
		return result{}, err
	}
	dur := time.Since(t0)
	q, err := metrics.Evaluate(ds.Dirty, res.Repair, ds.Opt)
	if err != nil {
		return result{}, err
	}
	return result{q: q, dur: dur}, nil
}

func runInc(ds *gen.Dataset, ord increpair.Ordering) (result, error) {
	t0 := time.Now()
	res, err := increpair.Repair(ds.Dirty, ds.Sigma, &increpair.Options{Ordering: ord})
	if err != nil {
		return result{}, err
	}
	dur := time.Since(t0)
	q, err := metrics.Evaluate(ds.Dirty, res.Repair, ds.Opt)
	if err != nil {
		return result{}, err
	}
	return result{q: q, dur: dur}, nil
}

func dataset(cfg Config, size int, rho, constShare float64) (*gen.Dataset, error) {
	return gen.New(gen.Config{
		Size:       size,
		NoiseRate:  rho,
		ConstShare: constShare,
		Seed:       cfg.Seed,
		Weights:    true,
	})
}

// noiseRates returns the ρ sweep of Figs. 9/10/13 (1%–10%).
func (c Config) noiseRates(from int) []float64 {
	step := 1
	if c.Quick {
		step = 3
	}
	var out []float64
	for p := from; p <= 10; p += step {
		out = append(out, float64(p)/100)
	}
	return out
}

// Fig8 — efficacy of CFDs vs FDs: BatchRepair accuracy on 60k tuples with
// the full Σ versus its embedded FDs, ρ = 2%–10%.
func Fig8(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: 8,
		Title:  fmt.Sprintf("Efficacy of CFDs vs FDs (BatchRepair, %d tuples)", c.Size),
		Header: []string{"rho%", "CFD/Prec", "CFD/Recall", "FD/Prec", "FD/Recall"},
	}
	rates := c.noiseRates(2)
	for _, rho := range rates {
		ds, err := dataset(c, c.Size, rho, 0.5)
		if err != nil {
			return nil, err
		}
		withCFDs, err := runBatch(ds, ds.Sigma)
		if err != nil {
			return nil, err
		}
		withFDs, err := runBatch(ds, ds.EmbeddedFDs())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rho*100),
			pct(withCFDs.q.Precision), pct(withCFDs.q.Recall),
			pct(withFDs.q.Precision), pct(withFDs.q.Recall),
		})
	}
	return t, nil
}

// accuracySweep drives Figs. 9 and 10: all four algorithms across noise
// rates; pick selects the reported measure.
func accuracySweep(cfg Config, fig int, title string, pick func(*metrics.Quality) float64) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: fig,
		Title:  fmt.Sprintf("%s (%d tuples)", title, c.Size),
		Header: []string{"rho%", "BatchRepair", "V-IncRepair", "W-IncRepair", "L-IncRepair"},
	}
	for _, rho := range c.noiseRates(1) {
		ds, err := dataset(c, c.Size, rho, 0.5)
		if err != nil {
			return nil, err
		}
		b, err := runBatch(ds, ds.Sigma)
		if err != nil {
			return nil, err
		}
		v, err := runInc(ds, increpair.ByViolations)
		if err != nil {
			return nil, err
		}
		w, err := runInc(ds, increpair.ByWeight)
		if err != nil {
			return nil, err
		}
		l, err := runInc(ds, increpair.Linear)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rho*100),
			pct(pick(b.q)), pct(pick(v.q)), pct(pick(w.q)), pct(pick(l.q)),
		})
	}
	return t, nil
}

// Fig9 — precision vs noise rate for all four algorithms.
func Fig9(cfg Config) (*Table, error) {
	return accuracySweep(cfg, 9, "Precision vs noise rate",
		func(q *metrics.Quality) float64 { return q.Precision })
}

// Fig10 — recall vs noise rate for all four algorithms.
func Fig10(cfg Config) (*Table, error) {
	return accuracySweep(cfg, 10, "Recall vs noise rate",
		func(q *metrics.Quality) float64 { return q.Recall })
}

// Fig11 — scalability of (optimized) BatchRepair: runtime as the database
// grows, ρ fixed at 5%. The paper sweeps 60k–300k.
func Fig11(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: 11,
		Title:  "BatchRepair scalability (rho = 5%)",
		Header: []string{"tuples", "runtime_s"},
	}
	sizes := []int{c.Size, 2 * c.Size, 3 * c.Size, 4 * c.Size, 5 * c.Size}
	if c.Quick {
		sizes = []int{c.Size, 3 * c.Size, 5 * c.Size}
	}
	for _, n := range sizes {
		ds, err := dataset(c, n, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		r, err := runBatch(ds, ds.Sigma)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), secs(r.dur)})
	}
	return t, nil
}

// Fig12 — incremental setting: a clean database of Size tuples, 10–70
// dirty tuples inserted; INCREPAIR repairs just ΔD while BATCHREPAIR
// recleans everything.
func Fig12(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: 12,
		Title:  fmt.Sprintf("Incremental vs batch on dirty insertions (clean %d tuples)", c.Size),
		Header: []string{"inserted", "IncRepair_s", "BatchRepair_s"},
	}
	// A clean base plus a pool of dirty tuples drawn from the same
	// universe: generate at full noise and reuse the dirty versions.
	base, err := dataset(c, c.Size, 0, 0.5)
	if err != nil {
		return nil, err
	}
	pool, err := gen.New(gen.Config{
		Size: 200, NoiseRate: 1, ConstShare: 0.5, Seed: c.Seed + 7, Weights: true,
	})
	if err != nil {
		return nil, err
	}
	counts := []int{10, 20, 30, 40, 50, 60, 70}
	if c.Quick {
		counts = []int{10, 40, 70}
	}
	for _, n := range counts {
		var delta []*relation.Tuple
		for i, id := range pool.DirtyIDs {
			if i >= n {
				break
			}
			tp := pool.Dirty.Tuple(id).Clone()
			tp.ID = relation.TupleID(1000000 + i)
			delta = append(delta, tp)
		}
		t0 := time.Now()
		if _, err := increpair.Incremental(base.Opt, delta, base.Sigma, nil); err != nil {
			return nil, err
		}
		incDur := time.Since(t0)

		// Batch baseline: reclean D ⊕ ΔD from scratch.
		combined := base.Opt.Clone()
		for _, tp := range delta {
			combined.MustInsert(tp.Clone())
		}
		t0 = time.Now()
		if _, err := repair.Batch(combined, base.Sigma, nil); err != nil {
			return nil, err
		}
		batchDur := time.Since(t0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), secs(incDur), secs(batchDur),
		})
	}
	return t, nil
}

// Fig13 — runtime vs noise rate for all four algorithms.
func Fig13(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: 13,
		Title:  fmt.Sprintf("Runtime vs noise rate (%d tuples)", c.Size),
		Header: []string{"rho%", "BatchRepair_s", "V-IncRepair_s", "W-IncRepair_s", "L-IncRepair_s"},
	}
	for _, rho := range c.noiseRates(1) {
		ds, err := dataset(c, c.Size, rho, 0.5)
		if err != nil {
			return nil, err
		}
		b, err := runBatch(ds, ds.Sigma)
		if err != nil {
			return nil, err
		}
		v, err := runInc(ds, increpair.ByViolations)
		if err != nil {
			return nil, err
		}
		w, err := runInc(ds, increpair.ByWeight)
		if err != nil {
			return nil, err
		}
		l, err := runInc(ds, increpair.Linear)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rho*100),
			secs(b.dur), secs(v.dur), secs(w.dur), secs(l.dur),
		})
	}
	return t, nil
}

// constShares is the Fig. 14/15 x-axis: the fraction of dirty tuples
// violating constant CFDs, 20%–80%.
func (c Config) constShares() []float64 {
	step := 10
	if c.Quick {
		step = 30
	}
	var out []float64
	for p := 20; p <= 80; p += step {
		out = append(out, float64(p)/100)
	}
	return out
}

// Fig14 — accuracy vs percentage of constant-CFD violations, ρ = 5%.
func Fig14(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: 14,
		Title:  fmt.Sprintf("Accuracy vs %% constant-CFD violations (%d tuples, rho = 5%%)", c.Size),
		Header: []string{"const%", "Batch/Prec", "Batch/Recall", "Inc/Prec", "Inc/Recall"},
	}
	for _, share := range c.constShares() {
		ds, err := dataset(c, c.Size, 0.05, share)
		if err != nil {
			return nil, err
		}
		b, err := runBatch(ds, ds.Sigma)
		if err != nil {
			return nil, err
		}
		v, err := runInc(ds, increpair.ByViolations)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", share*100),
			pct(b.q.Precision), pct(b.q.Recall),
			pct(v.q.Precision), pct(v.q.Recall),
		})
	}
	return t, nil
}

// Fig15 — runtime vs percentage of constant-CFD violations, ρ = 5%.
func Fig15(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	t := &Table{
		Figure: 15,
		Title:  fmt.Sprintf("Runtime vs %% constant-CFD violations (%d tuples, rho = 5%%)", c.Size),
		Header: []string{"const%", "BatchRepair_s", "IncRepair_s"},
	}
	for _, share := range c.constShares() {
		ds, err := dataset(c, c.Size, 0.05, share)
		if err != nil {
			return nil, err
		}
		b, err := runBatch(ds, ds.Sigma)
		if err != nil {
			return nil, err
		}
		v, err := runInc(ds, increpair.ByViolations)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", share*100), secs(b.dur), secs(v.dur),
		})
	}
	return t, nil
}

// All maps figure numbers to their runners.
var All = map[int]func(Config) (*Table, error){
	8: Fig8, 9: Fig9, 10: Fig10, 11: Fig11,
	12: Fig12, 13: Fig13, 14: Fig14, 15: Fig15,
}
