package strdist

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"NYC", "PHI", 3},
		{"19014", "10012", 2},
		{"Walnut", "Walnot", 1},
		{"日本語", "日本", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshteinBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "acb", 1}, // transposition counts once
		{"ca", "abc", 3},  // restricted DL: no substring edited twice
		{"abcd", "acbd", 1},
		{"kitten", "sitting", 3},
		{"PHI", "PIH", 1},
		{"smtih", "smith", 1},
		{"19014", "19041", 1},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDLNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDLIdentity(t *testing.T) {
	f := func(a string) bool { return DamerauLevenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDLSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return DamerauLevenshtein(a, b) == DamerauLevenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinUpperBound(t *testing.T) {
	// Distance never exceeds the length of the longer string (in runes).
	f := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		n := len(ra)
		if len(rb) > n {
			n = len(rb)
		}
		return Levenshtein(a, b) <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinLowerBound(t *testing.T) {
	// Distance is at least the difference of lengths.
	f := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		d := len(ra) - len(rb)
		if d < 0 {
			d = -d
		}
		return Levenshtein(a, b) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDLPositivity(t *testing.T) {
	f := func(a, b string) bool {
		d := DamerauLevenshtein(a, b)
		if a == b {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedRange(t *testing.T) {
	f := func(a, b string) bool {
		n := Normalized(DL, a, b)
		return n >= 0 && n <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedExamples(t *testing.T) {
	// Paper Example 3.1: changing a 3-char city (PHI -> NYC) has normalized
	// distance 3/3 = 1; changing zip 10012 -> 19014 is 3 edits over 5 = 0.6...
	// the paper quotes 1/3 for the AC change (212 -> 215, one substitution
	// over 3 chars) and 2/5 for the zip change in its cost arithmetic.
	if got := Normalized(DL, "PHI", "NYC"); got != 1 {
		t.Errorf("Normalized(PHI, NYC) = %v, want 1", got)
	}
	if got := Normalized(DL, "212", "215"); got != 1.0/3 {
		t.Errorf("Normalized(212, 215) = %v, want 1/3", got)
	}
	if got := Normalized(DL, "", ""); got != 0 {
		t.Errorf("Normalized(\"\", \"\") = %v, want 0", got)
	}
	// Longer strings with one edit are closer than shorter strings with one.
	long := Normalized(DL, "Pennsylvania", "Pennsylvani0")
	short := Normalized(DL, "PA", "P0")
	if long >= short {
		t.Errorf("normalized distance should favor long strings: long=%v short=%v", long, short)
	}
}

func TestJaroWinklerBasics(t *testing.T) {
	if d := JaroWinkler("abc", "abc"); d != 0 {
		t.Errorf("JaroWinkler identical = %v, want 0", d)
	}
	if d := JaroWinkler("", ""); d != 0 {
		t.Errorf("JaroWinkler empty = %v, want 0", d)
	}
	if d := JaroWinkler("abc", ""); d != 1 {
		t.Errorf("JaroWinkler vs empty = %v, want 1", d)
	}
	// Known value: MARTHA vs MARHTA has Jaro-Winkler similarity 0.9611.
	d := JaroWinkler("MARTHA", "MARHTA")
	if d < 0.0388 || d > 0.039 {
		t.Errorf("JaroWinkler(MARTHA, MARHTA) = %v, want ~0.0389", d)
	}
}

func TestJaroWinklerRange(t *testing.T) {
	f := func(a, b string) bool {
		d := JaroWinkler(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return abs(JaroWinkler(a, b)-JaroWinkler(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetricFuncAdapter(t *testing.T) {
	m := Func(func(a, b string) int { return len(a) + len(b) })
	if got := m.Distance("ab", "c"); got != 3 {
		t.Errorf("Func adapter = %d, want 3", got)
	}
}

func TestLevenshteinLongStrings(t *testing.T) {
	a := strings.Repeat("ab", 500)
	b := strings.Repeat("ab", 499) + "ba"
	if got := DamerauLevenshtein(a, b); got != 1 {
		t.Errorf("DL on long strings = %d, want 1", got)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkDamerauLevenshtein(b *testing.B) {
	x := "Pennsylvania Avenue 1600"
	y := "Pennsylvanai Avenue 1060"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DamerauLevenshtein(x, y)
	}
}
