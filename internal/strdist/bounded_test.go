package strdist

import "testing"

// DamerauLevenshteinBounded must agree with the full metric whenever the
// true distance is within the bound, and report max+1 (via any value
// > max) otherwise — including the early exits on byte length, rune
// length and row minima.
func TestDamerauLevenshteinBounded(t *testing.T) {
	cases := []struct{ a, b string }{
		{"", ""},
		{"abc", "abc"},
		{"abc", "acb"}, // transposition
		{"kitten", "sitting"},
		{"walnut", "wallnut"},
		{"short", "a much longer string entirely"},
		{"héllo", "hello"}, // multi-byte runes
		{"ab", "ba"},
		{"abcdef", "ghijkl"},
	}
	for _, c := range cases {
		full := DamerauLevenshtein(c.a, c.b)
		for max := 0; max <= full+2; max++ {
			got := DamerauLevenshteinBounded(c.a, c.b, max)
			if full <= max && got != full {
				t.Errorf("Bounded(%q,%q,%d) = %d, want exact %d", c.a, c.b, max, got, full)
			}
			if full > max && got <= max {
				t.Errorf("Bounded(%q,%q,%d) = %d, must exceed the bound (true %d)", c.a, c.b, max, got, full)
			}
		}
	}
	if got := DamerauLevenshteinBounded("abc", "xyz", -1); got != 0 {
		t.Errorf("negative bound = %d, want 0", got)
	}
}

// The DL metric's DistanceBounded must prune identically, and the
// generic Func fallback must ignore the bound.
func TestDistanceBoundedMetric(t *testing.T) {
	bm, ok := DL.(BoundedMetric)
	if !ok {
		t.Fatal("the default DL metric must implement BoundedMetric")
	}
	if got := bm.DistanceBounded("kitten", "sitting", 1); got <= 1 {
		t.Errorf("DL bounded = %d, want > 1", got)
	}
	if got := bm.DistanceBounded("kitten", "sitting", 5); got != 3 {
		t.Errorf("DL bounded = %d, want 3", got)
	}
	f := Func(Levenshtein)
	if got := f.DistanceBounded("kitten", "sitting", 0); got != 3 {
		t.Errorf("Func fallback = %d, want full distance 3", got)
	}
}
