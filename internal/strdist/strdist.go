// Package strdist provides string distance metrics used by the cost model
// of the CFD-repair framework.
//
// The paper (§3.2) adopts the Damerau–Levenshtein (DL) metric — the minimum
// number of single-character insertions, deletions and substitutions
// (plus adjacent transpositions) required to transform one string into the
// other — and normalizes it by the length of the longer string so that long
// strings with a one-character difference are considered closer than short
// strings with a one-character difference. Other metrics (§3.2 remark 2)
// can be plugged in through the Metric interface.
package strdist

// Metric computes a non-negative distance between two strings.
// Implementations must guarantee Distance(a, a) == 0 and symmetry.
type Metric interface {
	// Distance returns the edit distance between a and b.
	Distance(a, b string) int
}

// Func adapts an ordinary function to the Metric interface.
type Func func(a, b string) int

// Distance calls f(a, b).
func (f Func) Distance(a, b string) int { return f(a, b) }

// DL is the package-default Damerau–Levenshtein metric. It implements
// BoundedMetric with a pruned dynamic program.
var DL Metric = dlMetric{}

// Levenshtein returns the classic edit distance between a and b:
// the minimum number of single-character insertions, deletions and
// substitutions transforming a into b. It operates on runes, not bytes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Two-row dynamic program.
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// DamerauLevenshtein returns the restricted Damerau–Levenshtein distance
// (optimal string alignment): Levenshtein plus transposition of two
// adjacent characters, with no substring edited more than once.
// This is the metric named in the paper [16].
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three-row dynamic program: prev2 = row i-2, prev = row i-1, cur = row i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// BoundedMetric is an optional extension: DistanceBounded may give up as
// soon as it can prove the distance exceeds max, returning any value
// greater than max. Index structures that search within a radius (the
// BK-tree of package cluster) use it to prune the dynamic program, which
// dominates whole-run profiles otherwise.
type BoundedMetric interface {
	Metric
	// DistanceBounded returns the distance if it is ≤ max, or any value
	// > max otherwise.
	DistanceBounded(a, b string, max int) int
}

// DistanceBounded makes DL a BoundedMetric via DamerauLevenshteinBounded
// when f is the package default; other Funcs fall back to full distance.
func (f Func) DistanceBounded(a, b string, max int) int {
	return f(a, b)
}

type dlMetric struct{}

func (dlMetric) Distance(a, b string) int { return DamerauLevenshtein(a, b) }
func (dlMetric) DistanceBounded(a, b string, max int) int {
	return DamerauLevenshteinBounded(a, b, max)
}

// DamerauLevenshteinBounded is DamerauLevenshtein with a cutoff: it
// returns max+1 as soon as the distance provably exceeds max. The length
// difference is a lower bound on the distance, and each DP row's minimum
// is non-decreasing, so both give cheap early exits.
func DamerauLevenshteinBounded(a, b string, max int) int {
	if max < 0 {
		return 0
	}
	la, lb := len(a), len(b)
	// Byte lengths bound rune lengths from above; compute rune lengths
	// only when the cheap byte-length test cannot decide.
	if la-lb > max || lb-la > max {
		if d := runeLenDiff(a, b); d > max {
			return max + 1
		}
	}
	ra, rb := []rune(a), []rune(b)
	if diff := len(ra) - len(rb); diff > max || -diff > max {
		return max + 1
	}
	n := len(rb)
	prev2 := make([]int, n+1)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if rowMin > max {
			return max + 1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	if prev[n] > max {
		return max + 1
	}
	return prev[n]
}

func runeLenDiff(a, b string) int {
	la, lb := len([]rune(a)), len([]rune(b))
	if la > lb {
		return la - lb
	}
	return lb - la
}

// Normalized returns dis(a,b)/max(|a|,|b|) under metric m, the similarity
// measure used by the paper's cost model (§3.2). It lies in [0, 1] for
// metrics bounded by the longer string length (true for Levenshtein and DL).
// Normalized("", "") is 0: identical strings have zero distance.
func Normalized(m Metric, a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(m.Distance(a, b)) / float64(n)
}

// JaroWinkler returns the Jaro–Winkler similarity between a and b scaled
// into a distance in [0,1] (0 = identical). It is provided as an
// alternative metric (paper §3.2 remark 2, citing [11]); the repair
// algorithms only require a normalized distance in [0,1].
func JaroWinkler(a, b string) float64 {
	sim := jaroWinklerSim(a, b)
	return 1 - sim
}

func jaroWinklerSim(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	var matches int
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	var transpositions int
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	jaro := (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
	// Winkler prefix boost, standard p = 0.1, prefix capped at 4.
	prefix := 0
	for prefix < la && prefix < lb && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return jaro + float64(prefix)*0.1*(1-jaro)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
