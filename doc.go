// Package cfdclean improves data quality with conditional functional
// dependencies (CFDs), reproducing "Improving Data Quality: Consistency
// and Accuracy" (Cong, Fan, Geerts, Jia, Ma; VLDB 2007).
//
// A CFD (R: X → Y, Tp) extends a functional dependency with a pattern
// tableau that binds semantically related values: standard FDs are the
// special case of a single all-wildcard pattern row, while constant rows
// let a single tuple violate a constraint (a 212 area code with a
// Philadelphia city, say). The package detects such violations, repairs
// them automatically, and serves long-lived cleaning sessions to many
// concurrent tenants.
//
// # Paper-to-package map
//
// Each section of the paper lands in one internal package, re-exported
// through this facade:
//
//	§2–3  model           internal/relation (schema, tuples, weights,
//	                      nulls, active domains, interning, CSV) and
//	                      internal/cfd (tableaus, normalization,
//	                      satisfiability, detection)
//	§3.2  cost model      internal/cost (weighted DL/ED distances, dif)
//	§4    BATCHREPAIR     internal/repair + internal/eqclass (cost-guided
//	                      equivalence classes, component-parallel engine)
//	§5    INCREPAIR       internal/increpair (TUPLERESOLVE, the three
//	                      orderings, streaming Session) with
//	                      internal/cluster's cost-based indices
//	§6    sampling        internal/sampling (stratified samples, z-test)
//	                      wired by internal/core (the Fig. 3 loop)
//	§7    evaluation      internal/gen + workload (the order-relation
//	                      generator), internal/metrics (precision/
//	                      recall), cmd/experiments, bench_test.go
//	§9    future work     extensions.go: internal/discovery (CFD mining)
//	                      and internal/ind (inclusion dependencies)
//	—     service         internal/server + cmd/cfdserved (HTTP/JSON
//	                      multi-tenant session host; the §5 online
//	                      scenario as a long-running system)
//	—     durability      internal/wal (CRC-checked write-ahead log +
//	                      full-state snapshots; crash recovery replays
//	                      the journal's Delta stream through ApplyOps)
//
// # Data flow
//
// All cleaning machinery hangs off one spine: a Relation emits typed
// deltas through its mutation journal, a VioStore folds them into
// maintained violation state, and the repair engines read that state
// instead of re-scanning:
//
//	CSV / generator / wire batches
//	        │ Insert / Delete / Set
//	        ▼
//	  Relation ──────── mutation journal (typed Delta, NextID watermark,
//	        │                             Version counter)
//	        │ subscribe                     │
//	        ▼                               ▼
//	  VioStore: per-group violation lists, vio(t), vio(D),
//	            violation-graph components — all delta-maintained
//	        │
//	        ├── BatchRepair (§4): components repaired in parallel,
//	        │   merged in canonical order
//	        ├── IncRepair / Repair (§5): TUPLERESOLVE per arriving
//	        │   tuple against maintained state
//	        └── Session: the same engine kept alive across ΔD batches
//	                │
//	                ├── ReadView: epoch-pinned snapshot (page-level
//	                │   copy-on-write; the writer preserves pre-images
//	                │   only for pages it dirties while a view is pinned)
//	                │         │
//	                │         ▼
//	                │   RowCursor / VioCursor: lazy iterators in pinned
//	                │   physical / canonical (tuple, rule, partner) order
//	                │   with filter pushdown — streamed CSV dumps and
//	                │   paginated violation listings, O(page) allocation,
//	                │   no writer lock held during serialization
//	                ▼
//	        internal/server: named sessions, each a pipeline whose
//	        only serialized stage is the engine pass itself
//
//	          handler: decode + validate   (per-request goroutine)
//	                │
//	                ▼
//	          admission: per-tenant quotas, ahead of the queue —
//	                │ token buckets on ops/sec and tuples/sec
//	                │ (429 + Retry-After / X-Retry-After-Ms from the
//	                │ bucket's actual refill time), hard caps on
//	                │ relation size (403) and SSE subscribers (409)
//	                │ enqueue (bounded queue, 429 backpressure)
//	                ▼
//	          worker: fold coalescable batches → engine pass
//	                │ finished pass (FIFO)   [single writer]
//	                ▼
//	          committer: encode ∥ WAL append ∥ group fsync
//	                │              │ reply after durable    │ async
//	                ▼              ▼                        ▼
//	          response codec   internal/wal            SSE fan-out
//	                           length-prefixed CRC'd   (per-subscriber
//	                           batch records +         bounded buffers,
//	                           rotating snapshots      slow consumers
//	                           under -data-dir/        drop + resync)
//	                           <session>/
//	                                │
//	                                ├── -store disk: internal/store
//	                                │   subscribes to the same journal
//	                                │   and write-throughs dirty pages;
//	                                │   rotation flushes only those into
//	                                │   generation-numbered page files
//	                                │   (fixed-width interned rows,
//	                                │   persistent dict, LRU page cache)
//	                                │   and the snapshot shrinks to a
//	                                │   slim header naming StoreGen —
//	                                │   O(dirty) per rotation, not O(|D|)
//	                                │ on boot
//	                                ▼
//	                           RestoreSession + ReplayBatch: newest
//	                           valid snapshot, then WAL replay through
//	                           the same ApplyOps path (torn tails
//	                           discarded; byte-identical recovery);
//	                           paged snapshots stream rows back from
//	                           the store, opening pages lazily
//	                ▼
//	        cmd/cfdserved (HTTP/JSON service, -data-dir durability)
//
//	          read plane (off the pipeline entirely): GET /dump and
//	          GET /violations pin a ReadView from a small per-session
//	          version-keyed cache and stream from its cursors — chunked
//	          CSV with a completion trailer, opaque (version, offset)
//	          pagination cursors (410 Gone once the pinned version ages
//	          out), X-Session-Version on every response; SSE reconnects
//	          replay the journal tail from Last-Event-ID
//
//	          observability: GET /v1/metrics (JSON) and GET /metrics
//	          (Prometheus text exposition — cumulative le-bucketed
//	          histograms for pass latency, fsync lag and fold size,
//	          plus per-session queue-depth gauges and quota/SSE-drop
//	          counters), assembled from atomic loads without touching
//	          any session worker
//
// Detection state is computed once per engine run and then maintained:
// every mutation costs O(affected buckets), never O(|D|), which is what
// makes both the detect→fix→re-detect repair loops and the streaming
// sessions scale. The same journal that feeds the VioStore is what the
// WAL serializes: a batch record is the batch's input ops as typed
// Deltas bracketed by the journal's Version counter, so recovery is
// replay of the exact deterministic passes the live session ran.
//
// # Concurrency contracts
//
// Parallelism appears at four independent layers, each with the same
// rule — concurrency changes wall-clock time, never output:
//
//   - Detection shards index buckets across workers and merges in the
//     canonical (tuple, rule, partner) order.
//   - BatchRepair repairs violation-graph components concurrently, each
//     worker owning a full engine over its own clone, and merges fixes
//     in canonical component order.
//   - INCREPAIR evaluates TUPLERESOLVE's candidate attribute subsets on
//     per-worker scratch tuples with a deterministic merge.
//   - A Session is single-writer, many-reader: mutations serialize on
//     an internal lock while snapshot reads are lock-free against
//     atomically published state stamped with the journal's NextID
//     watermark and mutation Version. Bulk reads go further: ReadView
//     pins a refcounted epoch under a brief lock hand-off, after which
//     dumps and violation listings iterate copy-on-write pages with no
//     lock at all — the writer pays one page copy per dirtied page per
//     pinned epoch, readers pay nothing. The server builds on this with a
//     per-session pipeline — request decode in the handler goroutine,
//     one worker goroutine running engine passes (single-writer by
//     construction), one committer goroutine doing WAL encode/append,
//     group fsync (one sync amortized over the sessions of a window),
//     post-durability acknowledgement and asynchronous SSE fan-out —
//     plus a sharded session registry, bounded queues with
//     backpressure, and graceful drain. Reply content is fixed at the
//     pass boundary, so overlapping pass N+1 with pass N's commit
//     changes no bytes on the wire.
//
// # Determinism
//
// Given the same inputs and options, every entry point produces
// byte-identical output at every worker count — repairs, serialized
// CSV, and the service's wire responses (the server is verified
// byte-identical to in-process calls under -race). Randomized workloads
// are reproducible from their seed; see workload's package
// documentation.
//
// The quality of a repair against known ground truth is measured by
// EvaluateQuality (precision/recall over attribute-level differences,
// §7.1). See the examples directory for runnable walkthroughs
// (quickstart, incremental, streaming, service, ETL, accuracy),
// EXPERIMENTS.md for the reproduction of the paper's evaluation, and
// README.md for the service quickstart.
package cfdclean
