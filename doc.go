// Package cfdclean improves data quality with conditional functional
// dependencies (CFDs), reproducing "Improving Data Quality: Consistency
// and Accuracy" (Cong, Fan, Geerts, Jia, Ma; VLDB 2007).
//
// A CFD (R: X → Y, Tp) extends a functional dependency with a pattern
// tableau that binds semantically related values: standard FDs are the
// special case of a single all-wildcard pattern row, while constant rows
// let a single tuple violate a constraint (a 212 area code with a
// Philadelphia city, say). The package detects such violations and
// repairs them automatically:
//
//   - BatchRepair implements the paper's BATCHREPAIR (§4): an
//     equivalence-class, cost-guided heuristic that always terminates
//     with a repair satisfying Σ (finding a minimum-cost repair is
//     NP-complete even for fixed schema and Σ).
//   - IncRepair implements INCREPAIR (§5): given a clean database and a
//     batch of insertions, it repairs the new tuples one at a time —
//     greedily over attribute subsets of size k — without touching the
//     trusted data; Repair applies the same engine to a whole dirty
//     database (§5.3). Three tuple orderings (linear, by violations, by
//     weight) trade cost for accuracy.
//   - Cleaner wires both into the framework of the paper's Fig. 3 with a
//     sampling module (§6): a stratified sample of each candidate repair
//     is inspected by a user (or an oracle), a one-sided z-test decides
//     whether the repair's inaccuracy rate is below ε at confidence δ,
//     and the user's corrections feed the next round.
//
// The quality of a repair against known ground truth is measured by
// EvaluateQuality (precision/recall over attribute-level differences,
// §7.1). See the examples directory for runnable walkthroughs and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package cfdclean
