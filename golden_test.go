package cfdclean_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cfdclean"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden expected outputs")

// TestGoldenCorpus runs the end-to-end pipeline — load CSV, parse CFDs,
// detect, batch-repair, serialize — over the committed fixture datasets
// and diffs the result against the expected repaired output. The corpus
// pins concrete repair decisions (which cells change and to what), not
// just the satisfaction invariant: an engine change that silently alters
// repairs fails here with a readable diff. Regenerate with
//
//	go test -run TestGoldenCorpus -update .
//
// after verifying the new outputs are improvements.
func TestGoldenCorpus(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "golden", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no golden fixtures found")
	}
	for _, dir := range dirs {
		dir := dir
		if _, err := os.Stat(filepath.Join(dir, "dirty.csv")); err != nil {
			// Not a repair fixture: wal-session (the recorded WAL golden
			// log) lives here too and has its own replay test in
			// internal/wal/golden_test.go.
			continue
		}
		t.Run(filepath.Base(dir), func(t *testing.T) {
			df, err := os.Open(filepath.Join(dir, "dirty.csv"))
			if err != nil {
				t.Fatal(err)
			}
			defer df.Close()
			rel, err := cfdclean.ReadCSV("data", df)
			if err != nil {
				t.Fatal(err)
			}
			cf, err := os.Open(filepath.Join(dir, "cfds.txt"))
			if err != nil {
				t.Fatal(err)
			}
			defer cf.Close()
			parsed, err := cfdclean.ParseCFDs(rel.Schema(), cf)
			if err != nil {
				t.Fatal(err)
			}
			sigma := cfdclean.Normalize(parsed)

			if cfdclean.Satisfies(rel, sigma) {
				t.Fatal("fixture is already clean; it exercises nothing")
			}
			res, err := cfdclean.BatchRepair(rel, sigma, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !cfdclean.Satisfies(res.Repair, sigma) {
				t.Fatal("repair does not satisfy sigma")
			}
			var got bytes.Buffer
			if err := cfdclean.WriteCSV(res.Repair, &got); err != nil {
				t.Fatal(err)
			}
			// The golden bytes must be reachable at any worker count.
			for _, w := range []int{1, 4} {
				r2, err := cfdclean.BatchRepair(rel, sigma, &cfdclean.BatchOptions{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				var b2 bytes.Buffer
				if err := cfdclean.WriteCSV(r2.Repair, &b2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), b2.Bytes()) {
					t.Fatalf("workers=%d repair differs from the default run", w)
				}
			}

			expPath := filepath.Join(dir, "expected.csv")
			if *updateGolden {
				if err := os.WriteFile(expPath, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d cells changed, cost %.3f)", expPath, res.Changes, res.Cost)
				return
			}
			want, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("repaired output diverged from golden.\n--- got:\n%s--- want:\n%s", got.String(), want)
			}
		})
	}
}
