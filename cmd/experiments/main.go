// Command experiments regenerates the paper's evaluation figures
// (Figs. 8–15 of "Improving Data Quality: Consistency and Accuracy",
// VLDB 2007) on synthetic workloads.
//
// Usage:
//
//	experiments [-fig N] [-size N] [-seed N] [-quick] [-tsv]
//
// Without -fig, every figure runs in order. -size sets the base database
// size (the paper uses 60000; the default 10000 reproduces the shapes in
// minutes). -quick thins the parameter sweeps for smoke runs. -tsv emits
// tab-separated values for plotting instead of aligned text.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cfdclean/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (8-15); 0 means all")
	size := flag.Int("size", 10000, "base database size (paper: 60000)")
	seed := flag.Int64("seed", 1, "workload seed")
	quick := flag.Bool("quick", false, "thin parameter sweeps for a smoke run")
	tsv := flag.Bool("tsv", false, "emit tab-separated values")
	flag.Parse()

	cfg := experiments.Config{Size: *size, Seed: *seed, Quick: *quick}

	var figs []int
	if *fig != 0 {
		if _, ok := experiments.All[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: no figure %d (want 8-15)\n", *fig)
			os.Exit(2)
		}
		figs = []int{*fig}
	} else {
		for f := range experiments.All {
			figs = append(figs, f)
		}
		sort.Ints(figs)
	}

	for _, f := range figs {
		t0 := time.Now()
		table, err := experiments.All[f](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %d: %v\n", f, err)
			os.Exit(1)
		}
		if *tsv {
			table.TSV(os.Stdout)
		} else {
			table.Print(os.Stdout)
			fmt.Printf("  (completed in %.1fs)\n\n", time.Since(t0).Seconds())
		}
	}
}
