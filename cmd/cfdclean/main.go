// Command cfdclean detects and repairs CFD violations in a CSV dataset.
//
// Usage:
//
//	cfdclean -data dirty.csv -cfds cfds.txt [-mode batch|inc] [-o repaired.csv]
//	         [-detect] [-truth clean.csv] [-ordering linear|vio|weight] [-k N]
//	         [-workers N]
//
// With -detect the tool only reports violations. Otherwise it computes a
// repair with BATCHREPAIR (mode batch, the default) or INCREPAIR's §5.3
// driver (mode inc) and writes it to -o (default: stdout). With -truth
// pointing at the ground-truth CSV, it also reports precision and recall.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cfdclean"
)

func main() {
	data := flag.String("data", "", "input CSV (required)")
	cfds := flag.String("cfds", "", "CFD file (required)")
	mode := flag.String("mode", "batch", "repair engine: batch or inc")
	out := flag.String("o", "", "output CSV (default stdout)")
	detect := flag.Bool("detect", false, "only report violations, do not repair")
	truth := flag.String("truth", "", "ground-truth CSV for quality reporting")
	ordering := flag.String("ordering", "vio", "inc mode tuple order: linear, vio, or weight")
	k := flag.Int("k", 2, "inc mode attribute-subset size")
	limit := flag.Int("limit", 20, "max violations to print with -detect (0 = all)")
	workers := flag.Int("workers", 0, "detection/repair parallelism, incl. component-parallel batch repair (0 = all cores, 1 = sequential; output identical at every setting)")
	flag.Parse()

	if *data == "" || *cfds == "" {
		fmt.Fprintln(os.Stderr, "cfdclean: -data and -cfds are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*data, *cfds, *mode, *out, *truth, *ordering, *detect, *k, *limit, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "cfdclean: %v\n", err)
		os.Exit(1)
	}
}

func run(dataPath, cfdPath, mode, outPath, truthPath, ordering string, detect bool, k, limit, workers int) error {
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	rel, err := cfdclean.ReadCSV("data", f)
	f.Close()
	if err != nil {
		return err
	}

	cf, err := os.Open(cfdPath)
	if err != nil {
		return err
	}
	parsed, err := cfdclean.ParseCFDs(rel.Schema(), cf)
	cf.Close()
	if err != nil {
		return err
	}
	sigma := cfdclean.Normalize(parsed)
	if err := cfdclean.Satisfiable(sigma); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d tuples, %d CFDs (%d normal rules)\n",
		rel.Size(), len(parsed), len(sigma))

	if detect {
		return report(rel, sigma, limit, workers)
	}

	repaired, changes, cost, err := repairWith(rel, sigma, mode, ordering, k, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "repair: %d cells changed, cost %.2f\n", changes, cost)

	if truthPath != "" {
		tf, err := os.Open(truthPath)
		if err != nil {
			return err
		}
		dopt, err := cfdclean.ReadCSV("truth", tf)
		tf.Close()
		if err != nil {
			return err
		}
		q, err := cfdclean.EvaluateQuality(rel, repaired, dopt)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "quality: %v\n", q)
	}

	var w io.Writer = os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	return cfdclean.WriteCSV(repaired, w)
}

func report(rel *cfdclean.Relation, sigma []*cfdclean.NormalCFD, limit, workers int) error {
	// One detection pass serves both the listing and the per-tuple
	// counts; -workers bounds its parallelism.
	all := cfdclean.Detect(rel, sigma, workers)
	violating := make(map[cfdclean.TupleID]bool, len(all))
	for _, v := range all {
		violating[v.T] = true
	}
	vios := all
	if limit > 0 && len(vios) > limit {
		vios = vios[:limit]
	}
	fmt.Printf("%d tuples violate Σ\n", len(violating))
	for _, v := range vios {
		if v.With == 0 {
			fmt.Printf("  tuple %d violates %s\n", v.T, v.N.Name)
		} else {
			fmt.Printf("  tuple %d violates %s with tuple %d\n", v.T, v.N.Name, v.With)
		}
	}
	if limit > 0 && len(vios) == limit {
		fmt.Println("  ... (truncated; raise -limit)")
	}
	return nil
}

func repairWith(rel *cfdclean.Relation, sigma []*cfdclean.NormalCFD, mode, ordering string, k, workers int) (*cfdclean.Relation, int, float64, error) {
	switch mode {
	case "batch":
		// -workers drives the component-parallel schedule: violation-
		// graph components are repaired concurrently and the output is
		// byte-identical at every worker count.
		res, err := cfdclean.BatchRepair(rel, sigma, &cfdclean.BatchOptions{Workers: workers})
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Repair, res.Changes, res.Cost, nil
	case "inc":
		var ord cfdclean.Ordering
		switch ordering {
		case "linear":
			ord = cfdclean.OrderLinear
		case "vio":
			ord = cfdclean.OrderByViolations
		case "weight":
			ord = cfdclean.OrderByWeight
		default:
			return nil, 0, 0, fmt.Errorf("unknown ordering %q", ordering)
		}
		res, err := cfdclean.Repair(rel, sigma, &cfdclean.IncOptions{Ordering: ord, K: k, Workers: workers})
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Repair, res.Changes, res.Cost, nil
	default:
		return nil, 0, 0, fmt.Errorf("unknown mode %q (want batch or inc)", mode)
	}
}
