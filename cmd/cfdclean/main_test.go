package main

import (
	"os"
	"path/filepath"
	"testing"

	"cfdclean"
	"cfdclean/workload"
)

// writeFixture materializes a small dirty workload plus constraint file.
func writeFixture(t *testing.T) (dir string) {
	t.Helper()
	dir = t.TempDir()
	ds, err := workload.Generate(workload.Config{Size: 300, NoiseRate: 0.05, Seed: 5, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := os.Create(filepath.Join(dir, "dirty.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfdclean.WriteCSV(ds.Dirty, dirty); err != nil {
		t.Fatal(err)
	}
	dirty.Close()
	clean, err := os.Create(filepath.Join(dir, "clean.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfdclean.WriteCSV(ds.Opt, clean); err != nil {
		t.Fatal(err)
	}
	clean.Close()
	cf, err := os.Create(filepath.Join(dir, "cfds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfdclean.FormatCFDs(cf, ds.CFDs); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	return dir
}

func TestRunBatchMode(t *testing.T) {
	dir := writeFixture(t)
	out := filepath.Join(dir, "repaired.csv")
	err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
		"batch", out, filepath.Join(dir, "clean.csv"), "vio", false, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	repaired, err := cfdclean.ReadCSV("order", f)
	if err != nil {
		t.Fatal(err)
	}
	cf, _ := os.Open(filepath.Join(dir, "cfds.txt"))
	defer cf.Close()
	cfds, err := cfdclean.ParseCFDs(repaired.Schema(), cf)
	if err != nil {
		t.Fatal(err)
	}
	if !cfdclean.Satisfies(repaired, cfdclean.Normalize(cfds)) {
		t.Fatal("CLI output violates the constraints")
	}
}

func TestRunIncModeOrderings(t *testing.T) {
	dir := writeFixture(t)
	for _, ord := range []string{"linear", "vio", "weight"} {
		out := filepath.Join(dir, "repaired-"+ord+".csv")
		err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
			"inc", out, "", ord, false, 2, 0, 0)
		if err != nil {
			t.Fatalf("ordering %s: %v", ord, err)
		}
	}
}

func TestRunDetectMode(t *testing.T) {
	dir := writeFixture(t)
	err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
		"batch", "", "", "vio", true, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	dir := writeFixture(t)
	if err := run(filepath.Join(dir, "missing.csv"), filepath.Join(dir, "cfds.txt"),
		"batch", "", "", "vio", false, 2, 0, 0); err == nil {
		t.Fatal("missing data file accepted")
	}
	if err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
		"nope", "", "", "vio", false, 2, 0, 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
		"inc", "", "", "sideways", false, 2, 0, 0); err == nil {
		t.Fatal("unknown ordering accepted")
	}
	// Malformed CFD file: errors, not panics.
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("cfd broken header without arrow\n(_)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "dirty.csv"), bad,
		"batch", "", "", "vio", false, 2, 0, 0); err == nil {
		t.Fatal("malformed CFD file accepted")
	}
}

func TestRunDetectWorkersPlumbed(t *testing.T) {
	dir := writeFixture(t)
	// The -workers flag reaches Detector.SetWorkers; output is identical
	// at every setting, so both paths must simply succeed.
	for _, workers := range []int{1, 4} {
		err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
			"batch", "", "", "vio", true, 2, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	// And the inc-mode repair accepts the same plumbing.
	out := filepath.Join(dir, "repaired-workers.csv")
	if err := run(filepath.Join(dir, "dirty.csv"), filepath.Join(dir, "cfds.txt"),
		"inc", out, "", "vio", false, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
}
