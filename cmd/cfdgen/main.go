// Command cfdgen generates the synthetic order workload of the paper's
// evaluation (§7.1): a clean database consistent with a set Σ of seven
// CFDs, a dirty copy with controlled noise, per-cell weights, and the
// constraint file.
//
// Usage:
//
//	cfdgen -out DIR [-size N] [-noise R] [-const R] [-patterns N] [-seed N]
//
// The output directory receives:
//
//	clean.csv    the correct database Dopt
//	dirty.csv    the noisy database D
//	weights.csv  per-cell confidence weights for D
//	cfds.txt     Σ in the text format cfdclean parses
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cfdclean"
	"cfdclean/workload"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	size := flag.Int("size", 10000, "number of tuples")
	noise := flag.Float64("noise", 0.05, "noise rate rho in [0,1]")
	constShare := flag.Float64("const", 0.5, "share of dirty tuples violating constant CFDs")
	patterns := flag.Int("patterns", 0, "approximate pattern rows across tableaus (0 = scale with size)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "cfdgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *size, *noise, *constShare, *patterns, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "cfdgen: %v\n", err)
		os.Exit(1)
	}
}

func run(dir string, size int, noise, constShare float64, patterns int, seed int64) error {
	ds, err := workload.Generate(workload.Config{
		Size:        size,
		NoiseRate:   noise,
		ConstShare:  constShare,
		PatternRows: patterns,
		Seed:        seed,
		Weights:     true,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, f func(*os.File) error) error {
		file, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := f(file); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	if err := write("clean.csv", func(f *os.File) error {
		return cfdclean.WriteCSV(ds.Opt, f)
	}); err != nil {
		return err
	}
	if err := write("dirty.csv", func(f *os.File) error {
		return cfdclean.WriteCSV(ds.Dirty, f)
	}); err != nil {
		return err
	}
	if err := write("weights.csv", func(f *os.File) error {
		return writeWeights(ds, f)
	}); err != nil {
		return err
	}
	if err := write("cfds.txt", func(f *os.File) error {
		return cfdclean.FormatCFDs(f, ds.CFDs)
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples (%d dirty, %d noisy cells), %d pattern rows to %s\n",
		size, len(ds.DirtyIDs), ds.NoisyCells, ds.PatternRows, dir)
	return nil
}

func writeWeights(ds *workload.Dataset, f *os.File) error {
	// Reuse the relation CSV weight writer through the public API is not
	// exposed; emit id,attr,weight triples instead.
	if _, err := fmt.Fprintln(f, "id,attr,weight"); err != nil {
		return err
	}
	s := ds.Schema
	for _, t := range ds.Dirty.Tuples() {
		for i := range t.Vals {
			if w := t.Weight(i); w != 1 {
				if _, err := fmt.Fprintf(f, "%d,%s,%.4f\n", t.ID, s.Attr(i), w); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
