package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfdclean"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 300, 0.05, 0.5, 0, 7); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"clean.csv", "dirty.csv", "weights.csv", "cfds.txt"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// The artifacts compose: dirty.csv parses, cfds.txt parses against
	// its schema, and the clean file satisfies the constraints.
	df, err := os.Open(filepath.Join(dir, "clean.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	rel, err := cfdclean.ReadCSV("order", df)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := os.Open(filepath.Join(dir, "cfds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	cfds, err := cfdclean.ParseCFDs(rel.Schema(), cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) != 7 {
		t.Fatalf("parsed %d CFDs, want 7", len(cfds))
	}
	if !cfdclean.Satisfies(rel, cfdclean.Normalize(cfds)) {
		t.Fatal("clean.csv violates cfds.txt")
	}
}

func TestWeightsFileFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 100, 0.1, 0.5, 0, 3); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "weights.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "id,attr,weight" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("no weight rows written")
	}
	for _, l := range lines[1:3] {
		if strings.Count(l, ",") != 2 {
			t.Fatalf("malformed weight row %q", l)
		}
	}
}
