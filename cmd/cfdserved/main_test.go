package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cfdclean/internal/server"
)

// TestServeLifecycle boots the real service loop on a loopback port,
// performs one session round trip over HTTP, then stops it with a
// synthetic signal and expects a clean drain.
func TestServeLifecycle(t *testing.T) {
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve("127.0.0.1:0", "", server.Options{QueueDepth: 8, DrainTimeout: 10 * time.Second}, stop, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	create := `{"name":"smoke","base_csv":"AC,CT\n212,NYC\n","cfds":"cfd phi1: [AC] -> [CT]\n(212 || NYC)\n"}`
	resp, err = http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(create)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
	apply := `{"inserts":[{"vals":["212","PHI"]}]}`
	resp, err = http.Post(base+"/v1/sessions/smoke/apply", "application/json", bytes.NewReader([]byte(apply)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"satisfied":true`)) {
		t.Fatalf("apply: %d: %s", resp.StatusCode, body)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain after signal")
	}
}

func TestServeBadAddr(t *testing.T) {
	if err := serve("127.0.0.1:-1", "", server.Options{QueueDepth: 8, DrainTimeout: time.Second}, nil, nil); err == nil {
		t.Fatal("invalid listen address must fail")
	}
	if err := serve("127.0.0.1:0", "127.0.0.1:-1", server.Options{QueueDepth: 8, DrainTimeout: time.Second}, nil, nil); err == nil {
		t.Fatal("invalid pprof address must fail")
	}
}

// TestLoadtestWritesReport runs the self-loadtest at a tiny scale and
// checks the BENCH json shape it writes, including the durable rows
// the -data-dir mode adds next to each in-memory row, the per-stage
// server-side timings each row carries, the read-side summary a
// non-zero -read-frac attaches, and the per-row SLO verdict a -slo-p99
// bound adds (passing here: the bound is generous and every batch must
// succeed anyway).
func TestLoadtestWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	dataDir := t.TempDir()
	err := runLoadtest(loadtestOpts{
		sessionsCSV: "1,2", batches: 2, baseSize: 120, noise: 0.08, seed: 3,
		workers: 1, queue: 8, readFrac: 0.5, dataDir: dataDir, outPath: out,
		sloP99: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.PR != 8 || len(rep.Results) != 4 {
		t.Fatalf("report shape: %s", b)
	}
	if rep.Config.ReadFrac != 0.5 {
		t.Fatalf("read_frac not recorded: %s", b)
	}
	if rep.Results[0].Sessions != 1 || rep.Results[2].Sessions != 2 {
		t.Fatalf("session counts: %s", b)
	}
	for i, r := range rep.Results {
		if r.BatchesPerSec <= 0 || r.P99ms < r.P50ms {
			t.Fatalf("bad result row: %+v", r)
		}
		wantDurable := i%2 == 1
		if r.Durable != wantDurable {
			t.Fatalf("row %d durable = %v, want %v: %s", i, r.Durable, wantDurable, b)
		}
		if r.ErrorBatches != 0 {
			t.Fatalf("row %d reports %d error batches: %s", i, r.ErrorBatches, b)
		}
		if r.Gomaxprocs < 1 {
			t.Fatalf("row %d gomaxprocs = %d: %s", i, r.Gomaxprocs, b)
		}
		if r.Stages == nil || r.Stages.Engine == nil || r.Stages.Persist == nil {
			t.Fatalf("row %d missing stage timings: %s", i, b)
		}
		if r.Reads == nil || r.Reads.ErrorReads != 0 || r.Reads.RowsStreamed <= 0 {
			t.Fatalf("row %d missing or failed read summary: %s", i, b)
		}
		if r.SLO == nil || !r.SLO.Pass || r.SLO.TargetP99ms != 60_000 {
			t.Fatalf("row %d missing or failed SLO verdict: %s", i, b)
		}
	}
	// Durable runs clean their scratch directories up after themselves.
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("loadtest left %d entries in the data dir", len(ents))
	}
}

func TestLoadtestRejectsBadSessions(t *testing.T) {
	tiny := loadtestOpts{batches: 1, baseSize: 50, noise: 0.05, seed: 1, workers: 1, queue: 8}
	for _, tc := range []struct {
		name string
		mut  func(*loadtestOpts)
	}{
		{"non-integer session count", func(o *loadtestOpts) { o.sessionsCSV = "1,zero" }},
		{"zero session count", func(o *loadtestOpts) { o.sessionsCSV = "0" }},
		{"non-integer gomaxprocs", func(o *loadtestOpts) { o.sessionsCSV = "1"; o.gomaxprocsCSV = "2,x" }},
		{"read fraction >= 1", func(o *loadtestOpts) { o.sessionsCSV = "1"; o.readFrac = 1.5 }},
	} {
		o := tiny
		tc.mut(&o)
		if err := runLoadtest(o); err == nil {
			t.Fatalf("%s must fail", tc.name)
		}
	}
}

// TestLoadtestSLOGateFails drives the gate itself: an impossible p99
// bound must fail the command — but only after the report (the CI
// evidence) was written.
func TestLoadtestSLOGateFails(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := runLoadtest(loadtestOpts{
		sessionsCSV: "1", batches: 2, baseSize: 120, noise: 0.08, seed: 3,
		workers: 1, queue: 8, outPath: out,
		sloP99: 0.000001, // no real run can beat a nanosecond p99
	})
	if err == nil {
		t.Fatal("impossible SLO bound must fail the gate")
	}
	b, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatalf("breached run must still write its report: %v", rerr)
	}
	var rep loadReport
	if jerr := json.Unmarshal(b, &rep); jerr != nil || len(rep.Results) != 1 {
		t.Fatalf("breached report shape: %v: %s", jerr, b)
	}
	if rep.Results[0].SLO == nil || rep.Results[0].SLO.Pass {
		t.Fatalf("breached row must carry a failing verdict: %s", b)
	}
}
