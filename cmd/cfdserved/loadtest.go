package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cfdclean/workload"
)

// loadReport is the BENCH_PR5.json shape: environment header plus
// workload.LoadResult rows per concurrent-session count — one row for
// the in-memory server and, when -data-dir is given, a second row with
// per-batch WAL persistence on, so the durability overhead reads
// directly off adjacent rows.
type loadReport struct {
	PR          int                    `json:"pr"`
	Title       string                 `json:"title"`
	Environment loadEnv                `json:"environment"`
	Config      loadCfg                `json:"config"`
	Results     []*workload.LoadResult `json:"results"`
}

type loadEnv struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
	Command    string `json:"command"`
	Note       string `json:"note"`
}

type loadCfg struct {
	BatchesPerSession int     `json:"batches_per_session"`
	BaseSize          int     `json:"base_size"`
	NoiseRate         float64 `json:"noise_rate"`
	Seed              int64   `json:"seed"`
	Workers           int     `json:"workers"`
	QueueDepth        int     `json:"queue_depth"`
	DataDir           string  `json:"data_dir,omitempty"`
}

func runLoadtest(sessionsCSV string, batches, baseSize int, noise float64, seed int64, workers, queue int, dataDir, outPath string) error {
	var counts []int
	for _, f := range strings.Split(sessionsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("-sessions: %q is not a positive integer", f)
		}
		counts = append(counts, n)
	}

	cmd := fmt.Sprintf("go run ./cmd/cfdserved -loadtest -sessions %s -batches %d -base %d -noise %g -seed %d -workers %d",
		sessionsCSV, batches, baseSize, noise, seed, workers)
	if dataDir != "" {
		cmd += " -data-dir " + dataDir
	}
	rep := &loadReport{
		PR:    5,
		Title: "cfdserved: durable sessions — WAL + snapshot persistence vs in-memory",
		Environment: loadEnv{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version(),
			Command:    cmd,
			Note:       "In-process server on a loopback listener: latencies include the full HTTP round trip (JSON codec, registry, queue hand-off, engine pass) but no network. Durable rows add the per-batch WAL path — delta encode, CRC, append, fsync before the ack — under -fsync batch, the worst-case policy; each durable run writes to a fresh directory that is deleted afterwards. Apply calls are synchronous, so per-session traffic is closed-loop and total offered load scales with the session count.",
		},
		Config: loadCfg{
			BatchesPerSession: batches,
			BaseSize:          baseSize,
			NoiseRate:         noise,
			Seed:              seed,
			Workers:           workers,
			QueueDepth:        queue,
			DataDir:           dataDir,
		},
	}

	run := func(n int, dir string) error {
		mode := "in-memory"
		if dir != "" {
			mode = "durable"
		}
		fmt.Fprintf(os.Stderr, "loadtest: %d session(s), %d batches each, %s ... ", n, batches, mode)
		t0 := time.Now()
		res, err := workload.RunLoad(workload.LoadConfig{
			Sessions:   n,
			Batches:    batches,
			BaseSize:   baseSize,
			NoiseRate:  noise,
			Seed:       seed,
			Workers:    workers,
			QueueDepth: queue,
			DataDir:    dir,
		})
		if err != nil {
			return fmt.Errorf("sessions=%d (%s): %w", n, mode, err)
		}
		fmt.Fprintf(os.Stderr, "%.1f batches/s, p50 %.0fms, p99 %.0fms, %d error(s) (%v)\n",
			res.BatchesPerSec, res.P50ms, res.P99ms, res.ErrorBatches, time.Since(t0).Round(time.Millisecond))
		rep.Results = append(rep.Results, res)
		return nil
	}

	for _, n := range counts {
		if err := run(n, ""); err != nil {
			return err
		}
		if dataDir != "" {
			dir := filepath.Join(dataDir, fmt.Sprintf("loadtest-%d", n))
			err := run(n, dir)
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(outPath, b, 0o644)
}
