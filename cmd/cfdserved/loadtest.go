package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cfdclean/workload"
)

// loadReport is the BENCH json shape: environment header plus
// workload.LoadResult rows per (GOMAXPROCS, concurrent-session) pair —
// one row for the in-memory server and, when -data-dir is given, a
// second row with per-batch WAL persistence on, so the durability
// overhead reads directly off adjacent rows and the parallelism scaling
// off adjacent GOMAXPROCS groups. With -read-frac > 0 each row also
// carries a read-side summary (rows streamed per second, pages
// fetched, pinned-view lifetime) alongside the writer percentiles it
// was measured against. With -slo-p99 every row carries an SLO verdict
// and the command's exit status reflects the worst of them.
type loadReport struct {
	PR          int                    `json:"pr"`
	Title       string                 `json:"title"`
	Environment loadEnv                `json:"environment"`
	Config      loadCfg                `json:"config"`
	Results     []*workload.LoadResult `json:"results"`
}

type loadEnv struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
	Command    string `json:"command"`
	Note       string `json:"note"`
}

type loadCfg struct {
	BatchesPerSession int     `json:"batches_per_session"`
	BaseSize          int     `json:"base_size"`
	NoiseRate         float64 `json:"noise_rate"`
	Seed              int64   `json:"seed"`
	Workers           int     `json:"workers"`
	QueueDepth        int     `json:"queue_depth"`
	ReadFrac          float64 `json:"read_frac,omitempty"`
	DataDir           string  `json:"data_dir,omitempty"`
	SLOMaxP99ms       float64 `json:"slo_max_p99_ms,omitempty"`
	SLOMaxErrorRate   float64 `json:"slo_max_error_rate,omitempty"`
	QuotaOps          float64 `json:"quota_ops,omitempty"`
}

// loadtestOpts carries the -loadtest flag values into the driver.
type loadtestOpts struct {
	sessionsCSV, gomaxprocsCSV string
	batches, baseSize          int
	noise                      float64
	seed                       int64
	workers, queue             int
	readFrac                   float64
	dataDir, outPath           string
	// target drives an already-running service (workload.LoadConfig.
	// BaseURL) instead of the in-process server — how CI loads a real
	// multi-node cluster. Durable in-process rows are skipped.
	target string
	// sloP99 > 0 turns the run into an SLO assertion (see
	// workload.LoadConfig.SLOMaxP99ms); breaches fail the command AFTER
	// the report is written, so CI keeps the evidence.
	sloP99, sloErrors float64
	// quotaOps > 0 throttles session 0 to that many writes/sec so the
	// run exercises 429 + Retry-After backoff under multi-tenant load.
	quotaOps float64
}

func runLoadtest(o loadtestOpts) error {
	var counts []int
	for _, f := range strings.Split(o.sessionsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("-sessions: %q is not a positive integer", f)
		}
		counts = append(counts, n)
	}
	var procs []int
	if o.gomaxprocsCSV != "" {
		for _, f := range strings.Split(o.gomaxprocsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return fmt.Errorf("-gomaxprocs: %q is not a positive integer", f)
			}
			procs = append(procs, n)
		}
	} else {
		procs = []int{runtime.GOMAXPROCS(0)}
	}

	cmd := fmt.Sprintf("go run ./cmd/cfdserved -loadtest -sessions %s -batches %d -base %d -noise %g -seed %d -workers %d",
		o.sessionsCSV, o.batches, o.baseSize, o.noise, o.seed, o.workers)
	if o.gomaxprocsCSV != "" {
		cmd += " -gomaxprocs " + o.gomaxprocsCSV
	}
	if o.readFrac > 0 {
		cmd += fmt.Sprintf(" -read-frac %g", o.readFrac)
	}
	if o.dataDir != "" {
		cmd += " -data-dir " + o.dataDir
	}
	if o.target != "" {
		cmd += " -target " + o.target
	}
	if o.sloP99 > 0 {
		cmd += fmt.Sprintf(" -slo-p99 %g -slo-errors %g", o.sloP99, o.sloErrors)
	}
	if o.quotaOps > 0 {
		cmd += fmt.Sprintf(" -quota-ops %g", o.quotaOps)
	}
	rep := &loadReport{
		PR:    8,
		Title: "cfdserved: production observability — Prometheus exposition, per-tenant quotas, SLO-gated loadtests",
		Environment: loadEnv{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version(),
			Command:    cmd,
			Note:       "In-process server on a loopback listener: latencies include the full HTTP round trip (JSON codec, registry, queue hand-off, engine pass) but no network. Durable rows add the per-batch WAL path — delta encode, CRC, append, fsync before the ack, run on a per-session committer stage that overlaps the next engine pass, with one group fsync amortized across sessions per sync window — under -fsync batch, the worst-case policy; each durable run writes to a fresh directory that is deleted afterwards. Apply calls are synchronous, so per-session traffic is closed-loop and total offered load scales with the session count. The -gomaxprocs sweep re-runs each session count under runtime.GOMAXPROCS(n); on hosts with fewer physical cores than n the higher rows are structural (they exercise scheduling, not added parallelism). Per-row stages report server-side queue/engine/persist time from the X-Stage-* headers. With -read-frac f each session interleaves snapshot-isolated reads between its writes at f of total operations, alternating full streamed CSV dumps with cursor-paginated violation walks. With -quota-ops q session 0 is created with a q writes/sec token-bucket quota: its client absorbs 429s and retries after the server's Retry-After, tallied in rate_limited; the other sessions run unquota'd, so their percentiles demonstrate per-tenant isolation. With -slo-p99 each row carries an SLO verdict over write p99 and error rate (backoff waits are excluded from the percentile sample — they are the throttled tenant's own queueing, not service latency).",
		},
		Config: loadCfg{
			BatchesPerSession: o.batches,
			BaseSize:          o.baseSize,
			NoiseRate:         o.noise,
			Seed:              o.seed,
			Workers:           o.workers,
			QueueDepth:        o.queue,
			ReadFrac:          o.readFrac,
			DataDir:           o.dataDir,
			SLOMaxP99ms:       o.sloP99,
			SLOMaxErrorRate:   o.sloErrors,
			QuotaOps:          o.quotaOps,
		},
	}

	var breaches []string
	run := func(n int, dir string) error {
		mode := "in-memory"
		if dir != "" {
			mode = "durable"
		}
		if o.target != "" {
			mode = "external " + o.target
		}
		fmt.Fprintf(os.Stderr, "loadtest: gomaxprocs=%d, %d session(s), %d batches each, %s ... ", runtime.GOMAXPROCS(0), n, o.batches, mode)
		t0 := time.Now()
		res, err := workload.RunLoad(workload.LoadConfig{
			BaseURL:         o.target,
			Sessions:        n,
			Batches:         o.batches,
			BaseSize:        o.baseSize,
			NoiseRate:       o.noise,
			Seed:            o.seed,
			Workers:         o.workers,
			QueueDepth:      o.queue,
			ReadFrac:        o.readFrac,
			DataDir:         dir,
			SLOMaxP99ms:     o.sloP99,
			SLOMaxErrorRate: o.sloErrors,
			QuotaOps:        o.quotaOps,
		})
		if err != nil {
			return fmt.Errorf("sessions=%d (%s): %w", n, mode, err)
		}
		fmt.Fprintf(os.Stderr, "%.1f batches/s, p50 %.0fms, p99 %.0fms, %d error(s), %d rate-limited (%v)\n",
			res.BatchesPerSec, res.P50ms, res.P99ms, res.ErrorBatches, res.RateLimited, time.Since(t0).Round(time.Millisecond))
		if res.Reads != nil {
			fmt.Fprintf(os.Stderr, "loadtest:   reads: %d dump(s), %d page(s), %.0f rows/s streamed, %d read error(s)\n",
				res.Reads.Dumps, res.Reads.Pages, res.Reads.RowsPerSec, res.Reads.ErrorReads)
		}
		if res.SLO != nil && !res.SLO.Pass {
			for _, b := range res.SLO.Breaches {
				breaches = append(breaches, fmt.Sprintf("sessions=%d (%s): %s", n, mode, b))
			}
			fmt.Fprintf(os.Stderr, "loadtest:   SLO BREACH: %s\n", strings.Join(res.SLO.Breaches, "; "))
		}
		rep.Results = append(rep.Results, res)
		return nil
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gp := range procs {
		runtime.GOMAXPROCS(gp)
		for _, n := range counts {
			if err := run(n, ""); err != nil {
				return err
			}
			if o.dataDir != "" && o.target == "" {
				dir := filepath.Join(o.dataDir, fmt.Sprintf("loadtest-%d-%d", gp, n))
				err := run(n, dir)
				os.RemoveAll(dir)
				if err != nil {
					return err
				}
			}
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if o.outPath == "" {
		if _, err := os.Stdout.Write(b); err != nil {
			return err
		}
	} else if err := os.WriteFile(o.outPath, b, 0o644); err != nil {
		return err
	}
	// The gate fires only after the report is safely written: a breached
	// run must leave its evidence behind for the CI log artifact.
	if len(breaches) > 0 {
		return fmt.Errorf("SLO gate failed:\n  %s", strings.Join(breaches, "\n  "))
	}
	return nil
}
