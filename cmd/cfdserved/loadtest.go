package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cfdclean/workload"
)

// loadReport is the BENCH_PR7.json shape: environment header plus
// workload.LoadResult rows per (GOMAXPROCS, concurrent-session) pair —
// one row for the in-memory server and, when -data-dir is given, a
// second row with per-batch WAL persistence on, so the durability
// overhead reads directly off adjacent rows and the parallelism scaling
// off adjacent GOMAXPROCS groups. With -read-frac > 0 each row also
// carries a read-side summary (rows streamed per second, pages
// fetched, pinned-view lifetime) alongside the writer percentiles it
// was measured against.
type loadReport struct {
	PR          int                    `json:"pr"`
	Title       string                 `json:"title"`
	Environment loadEnv                `json:"environment"`
	Config      loadCfg                `json:"config"`
	Results     []*workload.LoadResult `json:"results"`
}

type loadEnv struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
	Command    string `json:"command"`
	Note       string `json:"note"`
}

type loadCfg struct {
	BatchesPerSession int     `json:"batches_per_session"`
	BaseSize          int     `json:"base_size"`
	NoiseRate         float64 `json:"noise_rate"`
	Seed              int64   `json:"seed"`
	Workers           int     `json:"workers"`
	QueueDepth        int     `json:"queue_depth"`
	ReadFrac          float64 `json:"read_frac,omitempty"`
	DataDir           string  `json:"data_dir,omitempty"`
}

func runLoadtest(sessionsCSV, gomaxprocsCSV string, batches, baseSize int, noise float64, seed int64, workers, queue int, readFrac float64, dataDir, outPath string) error {
	var counts []int
	for _, f := range strings.Split(sessionsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("-sessions: %q is not a positive integer", f)
		}
		counts = append(counts, n)
	}
	var procs []int
	if gomaxprocsCSV != "" {
		for _, f := range strings.Split(gomaxprocsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return fmt.Errorf("-gomaxprocs: %q is not a positive integer", f)
			}
			procs = append(procs, n)
		}
	} else {
		procs = []int{runtime.GOMAXPROCS(0)}
	}

	cmd := fmt.Sprintf("go run ./cmd/cfdserved -loadtest -sessions %s -batches %d -base %d -noise %g -seed %d -workers %d",
		sessionsCSV, batches, baseSize, noise, seed, workers)
	if gomaxprocsCSV != "" {
		cmd += " -gomaxprocs " + gomaxprocsCSV
	}
	if readFrac > 0 {
		cmd += fmt.Sprintf(" -read-frac %g", readFrac)
	}
	if dataDir != "" {
		cmd += " -data-dir " + dataDir
	}
	rep := &loadReport{
		PR:    7,
		Title: "cfdserved: lazy streaming reads — snapshot-isolated cursors take dumps and violation listings off the writer's lock",
		Environment: loadEnv{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version(),
			Command:    cmd,
			Note:       "In-process server on a loopback listener: latencies include the full HTTP round trip (JSON codec, registry, queue hand-off, engine pass) but no network. Durable rows add the per-batch WAL path — delta encode, CRC, append, fsync before the ack, now run on a per-session committer stage that overlaps the next engine pass, with one group fsync amortized across sessions per sync window — under -fsync batch, the worst-case policy; each durable run writes to a fresh directory that is deleted afterwards. Apply calls are synchronous, so per-session traffic is closed-loop and total offered load scales with the session count. The -gomaxprocs sweep re-runs each session count under runtime.GOMAXPROCS(n); on hosts with fewer physical cores than n the higher rows are structural (they exercise scheduling, not added parallelism). Per-row stages report server-side queue/engine/persist time from the X-Stage-* headers. With -read-frac f each session interleaves snapshot-isolated reads between its writes at f of total operations, alternating full streamed CSV dumps with cursor-paginated violation walks; reads pin copy-on-write views and never take the writer's lock, so comparing writer percentiles between a read-frac 0 row and a read-frac > 0 row at the same session count measures read/write isolation directly. Dump latency in the read summary is the client-observed pinned-view lifetime (first byte to trailer).",
		},
		Config: loadCfg{
			BatchesPerSession: batches,
			BaseSize:          baseSize,
			NoiseRate:         noise,
			Seed:              seed,
			Workers:           workers,
			QueueDepth:        queue,
			ReadFrac:          readFrac,
			DataDir:           dataDir,
		},
	}

	run := func(n int, dir string) error {
		mode := "in-memory"
		if dir != "" {
			mode = "durable"
		}
		fmt.Fprintf(os.Stderr, "loadtest: gomaxprocs=%d, %d session(s), %d batches each, %s ... ", runtime.GOMAXPROCS(0), n, batches, mode)
		t0 := time.Now()
		res, err := workload.RunLoad(workload.LoadConfig{
			Sessions:   n,
			Batches:    batches,
			BaseSize:   baseSize,
			NoiseRate:  noise,
			Seed:       seed,
			Workers:    workers,
			QueueDepth: queue,
			ReadFrac:   readFrac,
			DataDir:    dir,
		})
		if err != nil {
			return fmt.Errorf("sessions=%d (%s): %w", n, mode, err)
		}
		fmt.Fprintf(os.Stderr, "%.1f batches/s, p50 %.0fms, p99 %.0fms, %d error(s) (%v)\n",
			res.BatchesPerSec, res.P50ms, res.P99ms, res.ErrorBatches, time.Since(t0).Round(time.Millisecond))
		if res.Reads != nil {
			fmt.Fprintf(os.Stderr, "loadtest:   reads: %d dump(s), %d page(s), %.0f rows/s streamed, %d read error(s)\n",
				res.Reads.Dumps, res.Reads.Pages, res.Reads.RowsPerSec, res.Reads.ErrorReads)
		}
		rep.Results = append(rep.Results, res)
		return nil
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gp := range procs {
		runtime.GOMAXPROCS(gp)
		for _, n := range counts {
			if err := run(n, ""); err != nil {
				return err
			}
			if dataDir != "" {
				dir := filepath.Join(dataDir, fmt.Sprintf("loadtest-%d-%d", gp, n))
				err := run(n, dir)
				os.RemoveAll(dir)
				if err != nil {
					return err
				}
			}
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(outPath, b, 0o644)
}
