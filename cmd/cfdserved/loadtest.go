package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cfdclean/workload"
)

// loadReport is the BENCH_PR4.json shape: environment header plus one
// workload.LoadResult row per concurrent-session count.
type loadReport struct {
	PR          int                    `json:"pr"`
	Title       string                 `json:"title"`
	Environment loadEnv                `json:"environment"`
	Config      loadCfg                `json:"config"`
	Results     []*workload.LoadResult `json:"results"`
}

type loadEnv struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
	Command    string `json:"command"`
	Note       string `json:"note"`
}

type loadCfg struct {
	BatchesPerSession int     `json:"batches_per_session"`
	BaseSize          int     `json:"base_size"`
	NoiseRate         float64 `json:"noise_rate"`
	Seed              int64   `json:"seed"`
	Workers           int     `json:"workers"`
	QueueDepth        int     `json:"queue_depth"`
}

func runLoadtest(sessionsCSV string, batches, baseSize int, noise float64, seed int64, workers, queue int, outPath string) error {
	var counts []int
	for _, f := range strings.Split(sessionsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("-sessions: %q is not a positive integer", f)
		}
		counts = append(counts, n)
	}

	rep := &loadReport{
		PR:    4,
		Title: "cfdserved: concurrent multi-tenant cleaning service over streaming sessions",
		Environment: loadEnv{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version(),
			Command: fmt.Sprintf("go run ./cmd/cfdserved -loadtest -sessions %s -batches %d -base %d -noise %g -seed %d -workers %d",
				sessionsCSV, batches, baseSize, noise, seed, workers),
			Note: "In-process server on a loopback listener: latencies include the full HTTP round trip (JSON codec, registry, queue hand-off, engine pass) but no network. Each session streams its own generated order workload; apply calls are synchronous, so per-session traffic is closed-loop and total offered load scales with the session count. On a GOMAXPROCS=1 container the per-session engine passes serialize onto one core, so aggregate batches/sec stays roughly flat as sessions are added while per-request latency grows linearly with the session count; on multicore hardware independent sessions run on distinct cores and aggregate throughput scales until cores saturate.",
		},
		Config: loadCfg{
			BatchesPerSession: batches,
			BaseSize:          baseSize,
			NoiseRate:         noise,
			Seed:              seed,
			Workers:           workers,
			QueueDepth:        queue,
		},
	}

	for _, n := range counts {
		fmt.Fprintf(os.Stderr, "loadtest: %d session(s), %d batches each ... ", n, batches)
		t0 := time.Now()
		res, err := workload.RunLoad(workload.LoadConfig{
			Sessions:   n,
			Batches:    batches,
			BaseSize:   baseSize,
			NoiseRate:  noise,
			Seed:       seed,
			Workers:    workers,
			QueueDepth: queue,
		})
		if err != nil {
			return fmt.Errorf("sessions=%d: %w", n, err)
		}
		fmt.Fprintf(os.Stderr, "%.1f batches/s, p50 %.0fms, p99 %.0fms (%v)\n",
			res.BatchesPerSec, res.P50ms, res.P99ms, time.Since(t0).Round(time.Millisecond))
		rep.Results = append(rep.Results, res)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(outPath, b, 0o644)
}
