// Command cfdserved serves concurrent streaming cleaning sessions over
// HTTP/JSON: the paper's §5 online scenario (INCREPAIR over arriving ΔD
// batches) as a multi-tenant service. Each named session hosts one base
// database plus a CFD set; clients stream mutation batches and read
// maintained violation state.
//
// Usage:
//
//	cfdserved [-addr :8344] [-queue 32] [-drain 10s]
//	cfdserved -loadtest [-sessions 1,4,16] [-batches 8] [-base 800]
//	          [-noise 0.08] [-seed 1] [-workers 1] [-out BENCH_PR4.json]
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                        liveness (503 while draining)
//	GET    /v1/metrics                     service counters + pass latency
//	GET    /v1/sessions                    list sessions
//	POST   /v1/sessions                    create a session
//	GET    /v1/sessions/{name}             lock-free state snapshot
//	DELETE /v1/sessions/{name}             drain and close one session
//	POST   /v1/sessions/{name}/apply       synchronous mutation batch
//	POST   /v1/sessions/{name}/ingest      async insert batch (202/429)
//	GET    /v1/sessions/{name}/violations  current violations (?limit=N)
//	GET    /v1/sessions/{name}/dump        current relation as CSV
//	GET    /v1/sessions/{name}/events      SSE stream of applied batches
//
// On SIGINT/SIGTERM the service drains gracefully: in-flight and queued
// batches finish, sessions close, then the listener stops. With
// -loadtest the binary instead measures its own sustained throughput
// (see workload.RunLoad) and writes a JSON report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cfdclean/internal/server"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	queue := flag.Int("queue", 32, "per-session work queue depth (full queue: apply blocks, ingest gets 429)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget for queued work")

	loadtest := flag.Bool("loadtest", false, "run the service load driver instead of serving")
	sessions := flag.String("sessions", "1,4,16", "loadtest: comma-separated concurrent session counts")
	batches := flag.Int("batches", 8, "loadtest: batches streamed per session")
	baseSize := flag.Int("base", 800, "loadtest: clean base size per session")
	noise := flag.Float64("noise", 0.08, "loadtest: generator noise rate")
	seed := flag.Int64("seed", 1, "loadtest: generator seed (session i uses seed+i)")
	workers := flag.Int("workers", 1, "loadtest: per-session engine workers")
	out := flag.String("out", "", "loadtest: JSON report path (default stdout)")
	flag.Parse()

	if *loadtest {
		if err := runLoadtest(*sessions, *batches, *baseSize, *noise, *seed, *workers, *queue, *out); err != nil {
			fmt.Fprintf(os.Stderr, "cfdserved: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if err := serve(*addr, *queue, *drain, sigc, nil); err != nil {
		fmt.Fprintf(os.Stderr, "cfdserved: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the service until stop yields (a signal in production, a
// test's synthetic value otherwise), then drains gracefully. ready, if
// non-nil, receives the bound address once the listener is up.
func serve(addr string, queue int, drain time.Duration, stop <-chan os.Signal, ready chan<- string) error {
	svc := server.New(server.Options{QueueDepth: queue, DrainTimeout: drain})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("cfdserved: listening on %s (queue depth %d)", ln.Addr(), queue)
		errc <- hs.Serve(ln)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("cfdserved: %v — draining (budget %v)", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("cfdserved: drain incomplete: %v", err)
	} else {
		log.Printf("cfdserved: drained cleanly")
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
