// Command cfdserved serves concurrent streaming cleaning sessions over
// HTTP/JSON: the paper's §5 online scenario (INCREPAIR over arriving ΔD
// batches) as a multi-tenant service. Each named session hosts one base
// database plus a CFD set; clients stream mutation batches and read
// maintained violation state.
//
// Usage:
//
//	cfdserved [-addr :8344] [-queue 32] [-drain 10s] [-pprof ADDR]
//	          [-data-dir DIR] [-fsync batch|interval|off]
//	          [-fsync-interval 100ms] [-snap-every 64]
//	          [-store mem|disk] [-store-page 16384] [-store-cache 256]
//	          [-coalesce-tuples 0] [-coalesce-delay 0]
//	          [-max-read-limit 1000]
//	          [-quota-ops 0] [-quota-tuples 0]
//	          [-quota-max-size 0] [-quota-max-subscribers 0]
//	          [-peers HOST:PORT,HOST:PORT,...] [-self HOST:PORT]
//	          [-ack leader|quorum]
//	cfdserved -loadtest [-sessions 1,4,16] [-gomaxprocs 1,2,4]
//	          [-batches 8] [-base 800] [-noise 0.08] [-seed 1]
//	          [-workers 1] [-read-frac 0] [-data-dir DIR]
//	          [-slo-p99 0] [-slo-errors 0] [-quota-ops 0]
//	          [-target http://host:port] [-out BENCH.json]
//
// With -data-dir the service is durable: every session writes a
// CRC-checked write-ahead log plus periodic full-state snapshots under
// DIR/<session>/, and on boot the service recovers every persisted
// session — newest valid snapshot, then WAL replay — before accepting
// traffic, discarding any torn record tail a crash (kill -9 included)
// left behind. -fsync picks the durability/latency trade: "batch"
// syncs before every acknowledgement, "interval" syncs on a timer,
// "off" leaves flushing to the OS. In -loadtest mode -data-dir makes
// the driver measure durable and in-memory throughput side by side.
//
// -store picks the default tuple storage backend for durable sessions:
// "mem" (the default) writes full inline snapshots, "disk" spills
// tuples into generation-numbered page files under DIR/<session>/store/
// with a slim snapshot header, so rotation writes only dirty pages and
// recovery opens pages lazily instead of decoding the whole relation.
// A create request may override per session via its "store" field.
// -store-page and -store-cache tune the page size and the hot-set page
// cache. Recovered sessions keep the backend their snapshot was written
// with — restarting with -store disk does not convert existing tenants.
//
// With -peers (a static comma-separated node list including this node's
// -self address) the service runs clustered: session names hash
// consistently across the peers, any node routes requests it does not
// own to the owner, and every primary streams its WAL to the session's
// ring follower, so killing a node loses nothing acknowledged — promote
// the follower (POST /v1/sessions/{name}/promote) and it serves a
// byte-identical session. Writes landing on a follower answer 421 with
// the primary's address in X-Primary. -ack picks the durability scope
// of an acknowledgement: "leader" (default) answers after the local
// fsync, "quorum" waits for the follower too. GET /v1/cluster shows
// placement; PUT /v1/cluster/peers swaps the node list and transfers
// sessions to their new owners (snapshot ship + remote promote).
//
// The -quota-* flags set server-wide default per-session admission
// limits, enforced ahead of each session's work queue: -quota-ops and
// -quota-tuples are token-bucket rates (writes rejected with 429 and a
// Retry-After computed from the bucket's refill time), -quota-max-size
// caps relation size (403), -quota-max-subscribers caps concurrent SSE
// consumers (409). Zero means unlimited; a create request may override
// per session via its "quota" field.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                        liveness (503 while draining)
//	GET    /metrics                        Prometheus text exposition
//	GET    /v1/metrics                     service counters + pass latency
//	GET    /v1/sessions                    list sessions
//	POST   /v1/sessions                    create a session
//	GET    /v1/sessions/{name}             lock-free state snapshot
//	DELETE /v1/sessions/{name}             drain and close one session
//	POST   /v1/sessions/{name}/apply       synchronous mutation batch
//	POST   /v1/sessions/{name}/ingest      async insert batch (202/429)
//	GET    /v1/sessions/{name}/violations  paginated violations
//	GET    /v1/sessions/{name}/dump        relation as streamed CSV
//	GET    /v1/sessions/{name}/events      SSE stream of applied batches
//	POST   /v1/sessions/{name}/promote     promote a replica to primary
//	GET    /v1/cluster                     placement + replication state
//	PUT    /v1/cluster/peers               swap peer list, rebalance
//	PUT    /v1/replica/{name}              replication: snapshot install
//	POST   /v1/replica/{name}/batch        replication: one shipped batch
//	DELETE /v1/replica/{name}              replication: drop a replica
//
// Reads are snapshot-isolated: each request pins a consistent view of
// the session and never blocks (or is blocked by) the writer. Every
// read response carries the pinned journal version in
// X-Session-Version. /violations pages with ?limit=N (positive,
// capped by -max-read-limit) plus optional ?rule=, ?attr=, ?min_id=,
// ?max_id= pushdown filters; follow next_cursor via ?cursor= to walk
// the rest of the listing at the same pinned version, and restart from
// scratch on 410 Gone once that version ages out. /dump streams CSV in
// chunks — a successful response ends with an X-Dump-Complete: true
// trailer, a mid-stream failure aborts the connection so truncation is
// detectable. /events resumes: reconnect with Last-Event-ID set to the
// last seen version and the missed journal tail is replayed (a resync
// marker flags replays that outran the retained tail).
//
// On SIGINT/SIGTERM the service drains gracefully: in-flight and queued
// batches finish, sessions close, then the listener stops. With
// -loadtest the binary instead measures its own sustained throughput
// (see workload.RunLoad) and writes a JSON report; -gomaxprocs sweeps
// the runtime's parallelism across the given values, one result group
// per value, and -read-frac mixes streaming reads (dumps and cursor
// walks) into the write workload at the given operation fraction.
// -slo-p99 turns the loadtest into an SLO gate: the report gains a
// per-row verdict and the command exits non-zero (after writing the
// report) when any row's write p99 exceeds the bound or its error rate
// exceeds -slo-errors. In -loadtest mode -quota-ops throttles session 0
// to that many writes/sec — its clients absorb 429s and back off per
// Retry-After — so the run demonstrates per-tenant isolation.
//
// -pprof ADDR opens a second listener serving net/http/pprof on its
// default mux (/debug/pprof/...), kept off the service mux so profiling
// is never exposed on the public port. See EXPERIMENTS.md for the
// capture workflow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, served only by -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cfdclean/internal/server"
	"cfdclean/internal/store"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	queue := flag.Int("queue", 32, "per-session work queue depth (full queue: apply blocks, ingest gets 429)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget for queued work")
	dataDir := flag.String("data-dir", "", "durability root: per-session WAL + snapshots, recovered on boot (empty: in-memory)")
	fsyncMode := flag.String("fsync", "batch", "WAL fsync policy: batch (sync before every ack), interval, or off")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "sync timer for -fsync interval")
	snapEvery := flag.Int("snap-every", 64, "rotate to a fresh snapshot after this many logged batches")
	storeKind := flag.String("store", "", "default tuple storage backend for durable sessions: mem (inline snapshots) or disk (page-file spill store; requires -data-dir)")
	storePage := flag.Int("store-page", 0, "disk store page size in bytes, 4096-65536 power of two (0: store default)")
	storeCache := flag.Int("store-cache", 0, "disk store hot-set cache size in pages (0: store default)")
	coalesceTuples := flag.Int("coalesce-tuples", 0, "cap on tuples folded into one ingest pass (0: unbounded)")
	coalesceDelay := flag.Duration("coalesce-delay", 0, "linger window for folding more ingest batches into a pass (0: fold queued work only)")
	maxReadLimit := flag.Int("max-read-limit", 1000, "cap on ?limit= for paginated violation reads")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this extra address (empty: off)")
	quotaOps := flag.Float64("quota-ops", 0, "per-session write ops/sec quota, 429 past it (0: unlimited; loadtest: throttle session 0)")
	quotaTuples := flag.Float64("quota-tuples", 0, "per-session tuples/sec quota, 429 past it (0: unlimited)")
	quotaMaxSize := flag.Int("quota-max-size", 0, "per-session relation size cap, 403 past it (0: unlimited)")
	quotaMaxSubs := flag.Int("quota-max-subscribers", 0, "per-session SSE subscriber cap, 409 past it (0: unlimited)")
	peers := flag.String("peers", "", "cluster: comma-separated static node list, host:port each (empty: single-node)")
	self := flag.String("self", "", "cluster: this node's own entry in -peers")
	ackMode := flag.String("ack", "leader", "cluster: write acknowledgement scope: leader (local fsync) or quorum (follower ack too)")

	loadtest := flag.Bool("loadtest", false, "run the service load driver instead of serving")
	sessions := flag.String("sessions", "1,4,16", "loadtest: comma-separated concurrent session counts")
	gomaxprocs := flag.String("gomaxprocs", "", "loadtest: comma-separated GOMAXPROCS values to sweep (empty: current)")
	batches := flag.Int("batches", 8, "loadtest: batches streamed per session")
	baseSize := flag.Int("base", 800, "loadtest: clean base size per session")
	noise := flag.Float64("noise", 0.08, "loadtest: generator noise rate")
	seed := flag.Int64("seed", 1, "loadtest: generator seed (session i uses seed+i)")
	workers := flag.Int("workers", 1, "loadtest: per-session engine workers")
	readFrac := flag.Float64("read-frac", 0, "loadtest: fraction of operations that are streaming reads (0 <= f < 1)")
	sloP99 := flag.Float64("slo-p99", 0, "loadtest: SLO gate — exit non-zero when write p99 exceeds this many ms (0: off)")
	sloErrors := flag.Float64("slo-errors", 0, "loadtest: SLO gate — error-batch rate tolerated before breaching (default: none)")
	out := flag.String("out", "", "loadtest: JSON report path (default stdout)")
	target := flag.String("target", "", "loadtest: drive an already-running service at this base URL instead of an in-process server")
	flag.Parse()

	policy, err := server.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfdserved: -fsync: %v\n", err)
		os.Exit(2)
	}
	ack, err := server.ParseAckMode(*ackMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfdserved: -ack: %v\n", err)
		os.Exit(2)
	}
	kind, err := store.ParseKind(*storeKind)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfdserved: -store: %v\n", err)
		os.Exit(2)
	}
	if kind == store.KindDisk && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "cfdserved: -store disk requires -data-dir (the page files live under it)")
		os.Exit(2)
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *self == "" {
			fmt.Fprintln(os.Stderr, "cfdserved: -peers requires -self (this node's own entry in the list)")
			os.Exit(2)
		}
		ok := false
		for _, p := range peerList {
			if p == *self {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "cfdserved: -self %q is not in -peers\n", *self)
			os.Exit(2)
		}
	}
	popts := server.Options{
		QueueDepth:        *queue,
		DrainTimeout:      *drain,
		DataDir:           *dataDir,
		Fsync:             policy,
		FsyncInterval:     *fsyncEvery,
		SnapshotEvery:     *snapEvery,
		Store:             kind,
		StorePageSize:     *storePage,
		StoreCachePages:   *storeCache,
		CoalesceMaxTuples: *coalesceTuples,
		CoalesceDelay:     *coalesceDelay,
		MaxReadLimit:      *maxReadLimit,
		Quota: server.QuotaConfig{
			OpsPerSec:       *quotaOps,
			TuplesPerSec:    *quotaTuples,
			MaxRelationSize: *quotaMaxSize,
			MaxSubscribers:  *quotaMaxSubs,
		},
		Peers: peerList,
		Self:  *self,
		Ack:   ack,
	}

	if *loadtest {
		err := runLoadtest(loadtestOpts{
			sessionsCSV:   *sessions,
			gomaxprocsCSV: *gomaxprocs,
			batches:       *batches,
			baseSize:      *baseSize,
			noise:         *noise,
			seed:          *seed,
			workers:       *workers,
			queue:         *queue,
			readFrac:      *readFrac,
			dataDir:       *dataDir,
			target:        *target,
			outPath:       *out,
			sloP99:        *sloP99,
			sloErrors:     *sloErrors,
			quotaOps:      *quotaOps,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfdserved: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if err := serve(*addr, *pprofAddr, popts, sigc, nil); err != nil {
		fmt.Fprintf(os.Stderr, "cfdserved: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the service until stop yields (a signal in production, a
// test's synthetic value otherwise), then drains gracefully. ready, if
// non-nil, receives the bound address once the listener is up. With a
// data dir configured, persisted sessions are recovered before the
// listener opens, so no request ever races the replay. A non-empty
// pprofAddr opens a second listener serving the DefaultServeMux, where
// the net/http/pprof import registered /debug/pprof.
func serve(addr, pprofAddr string, opts server.Options, stop <-chan os.Signal, ready chan<- string) error {
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return err
		}
	}
	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer pln.Close()
		go func() {
			log.Printf("cfdserved: pprof on http://%s/debug/pprof/", pln.Addr())
			http.Serve(pln, nil)
		}()
	}
	svc := server.New(opts)
	if opts.DataDir != "" {
		n, err := svc.Recover()
		if err != nil {
			// Unrecoverable tenants are skipped, not fatal: their data
			// stays on disk for inspection while everyone else serves.
			log.Printf("cfdserved: recovery incomplete: %v", err)
		}
		log.Printf("cfdserved: recovered %d session(s) from %s (fsync %v, snapshot every %d batches)",
			n, opts.DataDir, opts.Fsync, opts.SnapshotEvery)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("cfdserved: listening on %s (queue depth %d)", ln.Addr(), opts.QueueDepth)
		errc <- hs.Serve(ln)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("cfdserved: %v — draining (budget %v)", sig, opts.DrainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("cfdserved: drain incomplete: %v", err)
	} else {
		log.Printf("cfdserved: drained cleanly")
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
