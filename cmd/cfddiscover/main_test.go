package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfdclean"
)

// writeCleanCSV builds a small clean extract with an obvious embedded FD
// (zip -> CT, ST) and enough support behind each pattern for the miner's
// default thresholds.
func writeCleanCSV(t *testing.T, dir string) string {
	t.Helper()
	rows := []string{"zip,CT,ST"}
	for i := 0; i < 8; i++ {
		rows = append(rows, "10012,NYC,NY")
	}
	for i := 0; i < 6; i++ {
		rows = append(rows, "19014,PHI,PA")
	}
	for i := 0; i < 5; i++ {
		rows = append(rows, "60614,CHI,IL")
	}
	path := filepath.Join(dir, "clean.csv")
	if err := os.WriteFile(path, []byte(strings.Join(rows, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunMinesAndRoundTrips is the command's smoke test: run() over a
// clean extract must mine at least the zip->city dependency, write a
// file cmd/cfdclean can consume (ParseCFDs round-trips it), and the
// mined rules must hold on the data they were mined from.
func TestRunMinesAndRoundTrips(t *testing.T) {
	dir := t.TempDir()
	data := writeCleanCSV(t, dir)
	out := filepath.Join(dir, "cfds.txt")
	if err := run(data, out, 2, 4, 1, ""); err != nil {
		t.Fatal(err)
	}

	df, err := os.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	rel, err := cfdclean.ReadCSV("data", df)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	mined, err := cfdclean.ParseCFDs(rel.Schema(), cf)
	if err != nil {
		t.Fatalf("mined output does not round-trip: %v", err)
	}
	if len(mined) == 0 {
		t.Fatal("no rules mined from a dataset with an exact FD")
	}
	sigma := cfdclean.Normalize(mined)
	if !cfdclean.Satisfies(rel, sigma) {
		t.Fatal("mined rules do not hold on the data they were mined from")
	}
}

// TestRunRejectsMissingData pins the error path: a nonexistent input
// must surface as an error, not a panic or an empty output file.
func TestRunRejectsMissingData(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "nope.csv"), filepath.Join(dir, "out.txt"), 2, 4, 1, ""); err == nil {
		t.Fatal("expected an error for a missing input file")
	}
}

// TestRunAttrFilter restricts mining to a subset of attributes and
// checks the filter is honored end to end.
func TestRunAttrFilter(t *testing.T) {
	dir := t.TempDir()
	data := writeCleanCSV(t, dir)
	out := filepath.Join(dir, "cfds.txt")
	if err := run(data, out, 1, 4, 1, "zip,CT"); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(content), "ST") {
		t.Fatalf("attribute filter leaked ST into the output:\n%s", content)
	}
}
