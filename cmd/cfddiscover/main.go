// Command cfddiscover mines CFDs from a CSV dataset (the paper's §9
// future work) and writes them in the text format cmd/cfdclean consumes —
// so a clean reference extract can bootstrap the constraints used to
// clean subsequent feeds.
//
// Usage:
//
//	cfddiscover -data clean.csv [-o cfds.txt] [-maxlhs N] [-support N]
//	            [-confidence R] [-attrs a,b,c]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cfdclean"
)

func main() {
	data := flag.String("data", "", "input CSV (required)")
	out := flag.String("o", "", "output CFD file (default stdout)")
	maxLHS := flag.Int("maxlhs", 2, "maximum LHS size")
	support := flag.Int("support", 4, "minimum tuples backing a constant pattern row")
	confidence := flag.Float64("confidence", 1, "minimum in-group agreement (1 = unanimous)")
	attrs := flag.String("attrs", "", "comma-separated attributes to mine over (default all)")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "cfddiscover: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*data, *out, *maxLHS, *support, *confidence, *attrs); err != nil {
		fmt.Fprintf(os.Stderr, "cfddiscover: %v\n", err)
		os.Exit(1)
	}
}

func run(dataPath, outPath string, maxLHS, support int, confidence float64, attrCSV string) error {
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	rel, err := cfdclean.ReadCSV("data", f)
	f.Close()
	if err != nil {
		return err
	}

	opts := &cfdclean.DiscoveryOptions{
		MaxLHS:        maxLHS,
		MinSupport:    support,
		MinConfidence: confidence,
	}
	if attrCSV != "" {
		for _, name := range strings.Split(attrCSV, ",") {
			i, err := rel.Schema().Index(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Attrs = append(opts.Attrs, i)
		}
	}

	rules, err := cfdclean.Discover(rel, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mined %d rules from %d tuples\n", len(rules), rel.Size())
	for _, r := range rules {
		tag := "exact"
		if !r.Exact {
			tag = "approx"
		}
		fmt.Fprintf(os.Stderr, "  %-40s support=%-6d rows=%-5d %s\n",
			r.CFD.Name, r.Support, len(r.CFD.Tableau), tag)
	}

	var w io.Writer = os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	var cfds []*cfdclean.CFD
	for _, r := range rules {
		cfds = append(cfds, r.CFD)
	}
	return cfdclean.FormatCFDs(w, cfds)
}
