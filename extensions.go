package cfdclean

import (
	"cfdclean/internal/cfd"
	"cfdclean/internal/discovery"
	"cfdclean/internal/ind"
	"cfdclean/internal/relation"
)

// The types and functions below implement the paper's stated future work
// (§9): automatic discovery of CFDs from data, and cleaning with
// inclusion dependencies alongside CFDs.

// Discovery (CFD mining).
type (
	// DiscoveryOptions bounds CFD mining.
	DiscoveryOptions = discovery.Options
	// MinedRule is one discovered CFD with support statistics.
	MinedRule = discovery.Rule
)

// Discover mines CFDs of the form X → A from rel: plain FDs become
// single-wildcard-row CFDs, and partial dependencies become constant
// pattern rows over the well-supported groups. opts may be nil.
func Discover(rel *Relation, opts *DiscoveryOptions) ([]MinedRule, error) {
	return discovery.Mine(rel, opts)
}

// Inclusion dependencies.
type (
	// IND is an inclusion dependency Child[X] ⊆ Parent[Y].
	IND = ind.IND
	// INDOptions tunes IND repair.
	INDOptions = ind.Options
	// INDResult reports an IND repair.
	INDResult = ind.Result
)

// NewIND builds an inclusion dependency from attribute names.
func NewIND(name string, child *Schema, x []string, parent *Schema, y []string) (*IND, error) {
	return ind.New(name, child, x, parent, y)
}

// INDViolations returns the child tuples whose X-projection is missing
// from parent[Y].
func INDViolations(child, parent *Relation, d *IND) []TupleID {
	return ind.Violations(child, parent, d)
}

// RepairIND makes child satisfy d against parent by child-side value
// modifications or parent-side insertions, whichever is cheaper. The
// inputs are not modified. opts may be nil.
func RepairIND(child, parent *Relation, d *IND, opts *INDOptions) (*INDResult, error) {
	return ind.Repair(child, parent, d, opts)
}

// RepairWithINDs cleans child against both sigma and the given inclusion
// dependencies, alternating CFD and IND repair to a fixpoint (§9).
func RepairWithINDs(child, parent *Relation, sigma []*NormalCFD, inds []*IND, opts *INDOptions) (*INDResult, error) {
	return ind.RepairWithCFDs(child, parent, sigma, inds, opts)
}

// compile-time checks that the facade aliases stay aligned with the
// internal packages.
var (
	_ = func(r *relation.Relation) *Relation { return r }
	_ = func(n *cfd.Normal) *NormalCFD { return n }
)
