module cfdclean

go 1.24
