package cfdclean_test

import (
	"bytes"
	"strings"
	"testing"

	"cfdclean"
	"cfdclean/workload"
)

// paperExample builds the paper's Fig. 1 running example: the order
// schema, tuples t1–t4, and CFDs ϕ1/ϕ2.
func paperExample(t *testing.T) (*cfdclean.Schema, *cfdclean.Relation, []*cfdclean.NormalCFD) {
	t.Helper()
	s := cfdclean.MustSchema("order",
		"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip")
	d := cfdclean.NewRelation(s)
	rows := [][]string{
		{"a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"},
		{"a23", "H. Porter", "17.99", "610", "3456789", "Spruce", "PHI", "PA", "19014"},
		{"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "PHI", "PA", "10012"},
		{"a89", "Snow White", "18.99", "212", "5674322", "Broad", "PHI", "PA", "10012"},
	}
	for _, r := range rows {
		if _, err := d.InsertRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	w := cfdclean.Wildcard
	phi1, err := cfdclean.NewCFD("phi1", s,
		[]string{"AC", "PN"}, []string{"STR", "CT", "ST"},
		[]cfdclean.PatternCell{w, w, w, w, w},
		[]cfdclean.PatternCell{cfdclean.Const("212"), w, w, cfdclean.Const("NYC"), cfdclean.Const("NY")},
		[]cfdclean.PatternCell{cfdclean.Const("610"), w, w, cfdclean.Const("PHI"), cfdclean.Const("PA")},
		[]cfdclean.PatternCell{cfdclean.Const("215"), w, w, cfdclean.Const("PHI"), cfdclean.Const("PA")},
	)
	if err != nil {
		t.Fatal(err)
	}
	phi2, err := cfdclean.NewCFD("phi2", s,
		[]string{"zip"}, []string{"CT", "ST"},
		[]cfdclean.PatternCell{cfdclean.Const("10012"), cfdclean.Const("NYC"), cfdclean.Const("NY")},
		[]cfdclean.PatternCell{cfdclean.Const("19014"), cfdclean.Const("PHI"), cfdclean.Const("PA")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s, d, cfdclean.Normalize([]*cfdclean.CFD{phi1, phi2})
}

func TestPaperExampleDetection(t *testing.T) {
	_, d, sigma := paperExample(t)
	if cfdclean.Satisfies(d, sigma) {
		t.Fatal("Fig. 1 data must violate ϕ1/ϕ2")
	}
	vio := cfdclean.VioCounts(d, sigma)
	// t3 and t4 (ids 3 and 4) each violate ϕ1 and ϕ2 (Example 2.2).
	for _, id := range []cfdclean.TupleID{3, 4} {
		if vio[id] == 0 {
			t.Fatalf("tuple %d not flagged", id)
		}
	}
	if vio[1] != 0 || vio[2] != 0 {
		t.Fatalf("clean tuples flagged: %v", vio)
	}
}

func TestPaperExampleBatchRepair(t *testing.T) {
	_, d, sigma := paperExample(t)
	res, err := cfdclean.BatchRepair(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfdclean.Satisfies(res.Repair, sigma) {
		t.Fatal("repair violates Σ")
	}
	// The suggested fix (Example 1.1): t3/t4 get CT,ST = NYC,NY.
	s := res.Repair.Schema()
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	for _, id := range []cfdclean.TupleID{3, 4} {
		tp := res.Repair.Tuple(id)
		if tp.Vals[ct].Str != "NYC" || tp.Vals[st].Str != "NY" {
			t.Fatalf("tuple %d repaired to (%v,%v), want (NYC,NY)",
				id, tp.Vals[ct], tp.Vals[st])
		}
	}
	if res.Changes == 0 || res.Cost <= 0 {
		t.Fatalf("result bookkeeping: %+v", res)
	}
}

func TestPaperExampleIncRepairT5(t *testing.T) {
	// Example 1.1's insertion: t5 = (215, 8983490, NYC, NY, 10012) plus
	// item fields. IncRepair must produce a consistent extension.
	_, d, sigma := paperExample(t)
	repr, err := cfdclean.BatchRepair(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	t5 := cfdclean.NewTuple(0,
		"a99", "New Item", "9.99", "215", "8983490", "Walnut", "NYC", "NY", "10012")
	res, err := cfdclean.IncRepair(repr.Repair, []*cfdclean.Tuple{t5}, sigma,
		&cfdclean.IncOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !cfdclean.Satisfies(res.Repair, sigma) {
		t.Fatal("incremental repair violates Σ")
	}
	// The trusted base is untouched.
	for _, tp := range repr.Repair.Tuples() {
		got := res.Repair.Tuple(tp.ID)
		if got == nil {
			t.Fatalf("base tuple %d lost", tp.ID)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	_, d, _ := paperExample(t)
	var buf bytes.Buffer
	if err := cfdclean.WriteCSV(d, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := cfdclean.ReadCSV("order", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != d.Size() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.Size(), d.Size())
	}
	if n := cfdclean.Dif(back, d); n != 0 {
		t.Fatalf("round trip changed %d cells", n)
	}
}

func TestCFDTextRoundTrip(t *testing.T) {
	s, _, _ := paperExample(t)
	phi, err := cfdclean.NewFD("fd1", s, []string{"AC", "PN"}, []string{"STR"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfdclean.FormatCFDs(&buf, []*cfdclean.CFD{phi}); err != nil {
		t.Fatal(err)
	}
	back, err := cfdclean.ParseCFDs(s, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].Tableau) != 1 {
		t.Fatalf("round trip: %v", back)
	}
}

func TestSatisfiableAPI(t *testing.T) {
	s := cfdclean.MustSchema("r", "A", "B")
	good, _ := cfdclean.NewFD("fd", s, []string{"A"}, []string{"B"})
	if err := cfdclean.Satisfiable(cfdclean.Normalize([]*cfdclean.CFD{good})); err != nil {
		t.Fatalf("FD reported unsatisfiable: %v", err)
	}
	bad, _ := cfdclean.NewCFD("bad", s, []string{"A"}, []string{"B"},
		[]cfdclean.PatternCell{cfdclean.Wildcard, cfdclean.Const("x")},
		[]cfdclean.PatternCell{cfdclean.Wildcard, cfdclean.Const("y")})
	if err := cfdclean.Satisfiable(cfdclean.Normalize([]*cfdclean.CFD{bad})); err == nil {
		t.Fatal("conflicting constants reported satisfiable")
	}
}

func TestWorkloadEndToEnd(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 800, NoiseRate: 0.05, Seed: 7, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cfdclean.BatchRepair(ds.Dirty, ds.Sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cfdclean.EvaluateQuality(ds.Dirty, res.Repair, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Recall < 0.7 {
		t.Fatalf("recall %.2f too low for ρ=5%%", q.Recall)
	}
	if q.Precision < 0.5 {
		t.Fatalf("precision %.2f too low for ρ=5%%", q.Precision)
	}
}

func TestCleanerEndToEnd(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 500, NoiseRate: 0.04, Seed: 9, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cfdclean.NewCleaner(cfdclean.CleanerConfig{
		Sigma: ds.Sigma, Eps: 0.1, Delta: 0.9, Mode: cfdclean.ModeBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Clean(ds.Dirty, &cfdclean.Oracle{Opt: ds.Opt})
	if err != nil {
		t.Fatal(err)
	}
	if !cfdclean.Satisfies(out.Repair, ds.Sigma) {
		t.Fatal("cleaner output violates Σ")
	}
}

func TestOrderingNames(t *testing.T) {
	for _, o := range []cfdclean.Ordering{
		cfdclean.OrderLinear, cfdclean.OrderByViolations, cfdclean.OrderByWeight,
	} {
		if o.String() == "" {
			t.Fatal("ordering must stringify")
		}
	}
}

func TestStreamingSessionEndToEnd(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 600, NoiseRate: 0.08, Seed: 13, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	deltas, truth := ds.StreamBatches(4)
	if len(deltas) != 4 || len(truth) != len(deltas) {
		t.Fatalf("StreamBatches returned %d/%d batches, want 4", len(deltas), len(truth))
	}

	sess, err := cfdclean.NewSession(ds.Opt, ds.Sigma,
		&cfdclean.IncOptions{Ordering: cfdclean.OrderByViolations})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Initial() != nil {
		t.Fatal("clean base must not trigger an initial repair")
	}

	streamed, correct := 0, 0
	for i, delta := range deltas {
		res, err := sess.ApplyDelta(delta)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !sess.Satisfied() {
			t.Fatalf("batch %d: maintained state reports violations", i)
		}
		streamed += len(delta)
		for _, rt := range res.Inserted {
			for _, want := range truth[i] {
				if want.ID != rt.ID {
					continue
				}
				same := true
				for a := range rt.Vals {
					if rt.Vals[a].String() != want.Vals[a].String() {
						same = false
						break
					}
				}
				if same {
					correct++
				}
			}
		}
	}
	// The invariant: a full re-detection over the final database agrees
	// with the session's O(1) maintained answer.
	if !cfdclean.Satisfies(sess.Current(), ds.Sigma) {
		t.Fatal("final session database violates Σ under full re-detection")
	}
	if got := sess.Current().Size(); got != ds.Opt.Size()+streamed {
		t.Fatalf("final size %d, want base %d + streamed %d", got, ds.Opt.Size(), streamed)
	}
	if float64(correct) < 0.5*float64(streamed) {
		t.Fatalf("only %d/%d streamed tuples repaired to ground truth", correct, streamed)
	}
	batches, tuples, cost, _ := sess.Stats()
	if batches != len(deltas) || tuples != streamed || cost <= 0 {
		t.Fatalf("stats (%d, %d, %v) inconsistent with stream", batches, tuples, cost)
	}
}
