package workload_test

import (
	"testing"

	"cfdclean"
	"cfdclean/workload"
)

func TestGenerateExposesCleanAndDirty(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 400, NoiseRate: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cfdclean.Satisfies(ds.Opt, ds.Sigma) {
		t.Fatal("Dopt violates Σ")
	}
	if cfdclean.Satisfies(ds.Dirty, ds.Sigma) {
		t.Fatal("D satisfies Σ despite noise")
	}
	if got := cfdclean.Dif(ds.Dirty, ds.Opt); got != ds.NoisyCells {
		t.Fatalf("Dif = %d, NoisyCells = %d", got, ds.NoisyCells)
	}
}

func TestAttrConstantsMatchSchema(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Schema
	for i, name := range workload.OrderAttrs {
		if s.Attr(i) != name {
			t.Fatalf("attr %d = %s, want %s", i, s.Attr(i), name)
		}
	}
	if s.Attr(workload.AttrZip) != "zip" || s.Attr(workload.AttrCT) != "CT" {
		t.Fatal("attribute position constants drifted")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := workload.Generate(workload.Config{}); err == nil {
		t.Fatal("zero Size accepted")
	}
}
