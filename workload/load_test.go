package workload

import "testing"

// TestRunLoadDurable runs the driver against a persistent in-process
// server: the report must be tagged durable and error-free, and the
// run must leave its session data cleaned up (sessions are deleted at
// teardown, which removes their durable state).
func TestRunLoadDurable(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Sessions:  1,
		Batches:   2,
		BaseSize:  120,
		NoiseRate: 0.08,
		Seed:      11,
		DataDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Durable || res.Fsync != "batch" {
		t.Fatalf("durable run not tagged: %+v", res)
	}
	if res.ErrorBatches != 0 || res.TotalBatches != 2 {
		t.Fatalf("durable run shape: %+v", res)
	}
	if _, err := RunLoad(LoadConfig{Sessions: 1, Batches: 1, BaseSize: 60, DataDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

// TestRunLoadMixedReads drives a read/write mix: half the operations
// are streaming reads (dumps and paginated violation walks), and the
// report must carry a complete, error-free read-side summary.
func TestRunLoadMixedReads(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Sessions:  2,
		Batches:   4,
		BaseSize:  150,
		NoiseRate: 0.08,
		Seed:      3,
		ReadFrac:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == nil {
		t.Fatalf("mixed run reported no read stats: %+v", res)
	}
	r := res.Reads
	// ReadFrac 0.5 means one read per write: 8 writes -> 8 reads,
	// alternating dump / violation walk.
	if r.Dumps+r.Pages == 0 || r.Dumps == 0 || r.Pages == 0 {
		t.Fatalf("read mix did not exercise both read kinds: %+v", r)
	}
	if r.ErrorReads != 0 {
		t.Fatalf("reads failed: %+v", r)
	}
	if r.RowsStreamed <= 0 || r.RowsPerSec <= 0 {
		t.Fatalf("no rows streamed: %+v", r)
	}
	if r.DumpLatency == nil || r.DumpLatency.Count != r.Dumps {
		t.Fatalf("dump latency sample inconsistent: %+v", r)
	}
	if res.ErrorBatches != 0 {
		t.Fatalf("writes failed under read mix: %+v", res)
	}

	if _, err := RunLoad(LoadConfig{Sessions: 1, Batches: 1, BaseSize: 60, ReadFrac: 1}); err == nil {
		t.Fatal("ReadFrac=1 accepted (no writes would flow)")
	}
}

// TestRunLoadQuotaThrottle drives the multi-tenant isolation story at
// unit scale: session 0 is created with a tight ops/sec quota, its
// client absorbs 429s and retries after the server's advertised
// backoff, and the run finishes with every batch landed — rate-limited
// rejections tallied separately, never as errors — while the SLO
// verdict (measured on a sample that excludes backoff waits) passes.
func TestRunLoadQuotaThrottle(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Sessions:    2,
		Batches:     4,
		BaseSize:    120,
		NoiseRate:   0.08,
		Seed:        5,
		QuotaOps:    2,
		SLOMaxP99ms: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RateLimited < 1 {
		t.Fatalf("throttled tenant saw no 429s: %+v", res)
	}
	if res.ErrorBatches != 0 || res.TotalBatches != 8 {
		t.Fatalf("retried 429s must all land without errors: %+v", res)
	}
	if res.SLO == nil || !res.SLO.Pass || res.SLO.ErrorRate != 0 {
		t.Fatalf("SLO verdict: %+v", res.SLO)
	}
}

// TestEvaluateSLO pins the gate's verdict composition without running
// a server.
func TestEvaluateSLO(t *testing.T) {
	cfg := LoadConfig{SLOMaxP99ms: 100}
	ok := evaluateSLO(cfg, &LoadResult{TotalBatches: 10, P99ms: 99})
	if !ok.Pass || len(ok.Breaches) != 0 || ok.TargetP99ms != 100 {
		t.Fatalf("clean run: %+v", ok)
	}
	slow := evaluateSLO(cfg, &LoadResult{TotalBatches: 10, P99ms: 101})
	if slow.Pass || len(slow.Breaches) != 1 {
		t.Fatalf("p99 breach: %+v", slow)
	}
	// Default tolerance: any failed batch breaches.
	errs := evaluateSLO(cfg, &LoadResult{TotalBatches: 9, ErrorBatches: 1, P99ms: 50})
	if errs.Pass || errs.ErrorRate != 0.1 {
		t.Fatalf("error breach: %+v", errs)
	}
	// A non-zero tolerance admits that same rate.
	cfg.SLOMaxErrorRate = 0.2
	if got := evaluateSLO(cfg, &LoadResult{TotalBatches: 9, ErrorBatches: 1, P99ms: 50}); !got.Pass {
		t.Fatalf("tolerated error rate still breached: %+v", got)
	}
	// Nothing succeeded: breached regardless of latency.
	dead := evaluateSLO(cfg, &LoadResult{})
	if dead.Pass {
		t.Fatalf("empty run passed: %+v", dead)
	}
}

// TestRunLoadSmoke exercises the full load-driver path — in-process
// server, session creation over generated bases, concurrent streaming,
// teardown — at a tiny scale, and sanity-checks the report's arithmetic.
func TestRunLoadSmoke(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Sessions:  2,
		Batches:   2,
		BaseSize:  150,
		NoiseRate: 0.08,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 2 || res.TotalBatches != 4 {
		t.Fatalf("report shape: %+v", res)
	}
	if res.TotalTuples <= 0 || res.MeanBatch <= 0 {
		t.Fatalf("no tuples streamed: %+v", res)
	}
	if res.WallSeconds <= 0 || res.BatchesPerSec <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50ms <= 0 || res.P99ms < res.P50ms || res.MaxMs < res.P99ms {
		t.Fatalf("latency percentiles inconsistent: %+v", res)
	}
	if res.ErrorBatches != 0 || res.Durable {
		t.Fatalf("in-memory clean run mis-tagged: %+v", res)
	}
}
