package workload

import "testing"

// TestRunLoadDurable runs the driver against a persistent in-process
// server: the report must be tagged durable and error-free, and the
// run must leave its session data cleaned up (sessions are deleted at
// teardown, which removes their durable state).
func TestRunLoadDurable(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Sessions:  1,
		Batches:   2,
		BaseSize:  120,
		NoiseRate: 0.08,
		Seed:      11,
		DataDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Durable || res.Fsync != "batch" {
		t.Fatalf("durable run not tagged: %+v", res)
	}
	if res.ErrorBatches != 0 || res.TotalBatches != 2 {
		t.Fatalf("durable run shape: %+v", res)
	}
	if _, err := RunLoad(LoadConfig{Sessions: 1, Batches: 1, BaseSize: 60, DataDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

// TestRunLoadSmoke exercises the full load-driver path — in-process
// server, session creation over generated bases, concurrent streaming,
// teardown — at a tiny scale, and sanity-checks the report's arithmetic.
func TestRunLoadSmoke(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Sessions:  2,
		Batches:   2,
		BaseSize:  150,
		NoiseRate: 0.08,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 2 || res.TotalBatches != 4 {
		t.Fatalf("report shape: %+v", res)
	}
	if res.TotalTuples <= 0 || res.MeanBatch <= 0 {
		t.Fatalf("no tuples streamed: %+v", res)
	}
	if res.WallSeconds <= 0 || res.BatchesPerSec <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50ms <= 0 || res.P99ms < res.P50ms || res.MaxMs < res.P99ms {
		t.Fatalf("latency percentiles inconsistent: %+v", res)
	}
	if res.ErrorBatches != 0 || res.Durable {
		t.Fatalf("in-memory clean run mis-tagged: %+v", res)
	}
}
