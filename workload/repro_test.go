package workload_test

import (
	"bytes"
	"testing"

	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/workload"
)

// TestGenerateReproducible asserts the documented contract that identical
// Configs yield identical datasets, byte for byte, under the interned
// substrate (value ids are assigned in insertion order, so two runs of
// the generator produce identical relations and dictionaries).
func TestGenerateReproducible(t *testing.T) {
	cfg := workload.Config{Size: 400, NoiseRate: 0.08, ConstShare: 0.5, Seed: 42, Weights: true}
	a, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := relation.WriteCSV(a.Dirty, &bufA); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(b.Dirty, &bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed generated different dirty databases")
	}
	bufA.Reset()
	bufB.Reset()
	if err := relation.WriteWeightsCSV(a.Dirty, &bufA); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteWeightsCSV(b.Dirty, &bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed generated different weight vectors")
	}
}

// TestRepairReproducible asserts that a workload run is reproducible end
// to end: the same seed yields the same repair cost, change count and
// repaired database — and that the parallel candidate evaluation of
// INCREPAIR does not perturb the result at any worker count.
func TestRepairReproducible(t *testing.T) {
	cfg := workload.Config{Size: 250, NoiseRate: 0.08, ConstShare: 0.5, Seed: 7}
	type outcome struct {
		cost    float64
		changes int
		csv     []byte
	}
	run := func(workers int) outcome {
		t.Helper()
		ds, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := increpair.Repair(ds.Dirty, ds.Sigma, &increpair.Options{
			Ordering: increpair.ByViolations,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := relation.WriteCSV(res.Repair, &buf); err != nil {
			t.Fatal(err)
		}
		return outcome{cost: res.Cost, changes: res.Changes, csv: buf.Bytes()}
	}
	base := run(1)
	if base.changes == 0 {
		t.Fatal("repair changed nothing; test is vacuous")
	}
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		if got.cost != base.cost {
			t.Fatalf("workers=%d: repair cost %v, want %v", workers, got.cost, base.cost)
		}
		if got.changes != base.changes {
			t.Fatalf("workers=%d: %d changes, want %d", workers, got.changes, base.changes)
		}
		if !bytes.Equal(got.csv, base.csv) {
			t.Fatalf("workers=%d: repaired database differs from the workers=1 run", workers)
		}
	}
}
