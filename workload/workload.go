// Package workload synthesizes the paper's experimental workload (§7.1):
// an extended order relation with correlated values, a set Σ of seven
// CFDs with large pattern tableaus, controlled noise at rate ρ, and the
// weight protocol of the cost model. It is the documented substitution
// for the paper's data scraped from AMAZON and other websites (see
// DESIGN.md §2) and drives both the examples and the benchmark harness.
//
// # Reproducibility
//
// Workload runs are reproducible end to end under the interned value
// substrate. Identical Configs yield byte-identical datasets: all
// randomness flows from Seed, and interned value ids are assigned in
// insertion order, so dictionaries, active domains and hash indices come
// out identical run to run. Repairs over a generated dataset are equally
// deterministic — same seed, same repair cost, same repaired database —
// at every detection/INCREPAIR worker count, because the parallel paths
// merge their shards in a canonical order (see repro_test.go).
package workload

import (
	"cfdclean/internal/gen"
)

// Config controls one generated dataset; see the field documentation on
// the underlying type. The zero value of everything but Size is usable.
type Config = gen.Config

// Dataset bundles the clean database Dopt, the dirty database D, the
// constraint set Σ (general and normal form), and bookkeeping about the
// injected noise.
type Dataset = gen.Dataset

// Attribute positions of the generated order schema.
const (
	AttrID   = gen.AID
	AttrName = gen.AName
	AttrPR   = gen.APR
	AttrAC   = gen.AAC
	AttrPN   = gen.APN
	AttrSTR  = gen.ASTR
	AttrCT   = gen.ACT
	AttrST   = gen.AST
	AttrZip  = gen.AZip
	AttrCTY  = gen.ACTY
	AttrVAT  = gen.AVAT
	AttrTT   = gen.ATT
	AttrQTT  = gen.AQTT
)

// OrderAttrs is the attribute list of the generated order schema.
var OrderAttrs = gen.OrderAttrs

// Generate builds a dataset; identical Configs yield identical data.
// For the streaming scenario, Dataset.StreamBatches arranges the
// perturbed tuples as ΔD insertion batches (with ground truth) over the
// clean Opt base — the input format of the Session/ApplyDelta API.
func Generate(cfg Config) (*Dataset, error) { return gen.New(cfg) }
