package workload

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	neturl "net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
	"cfdclean/internal/relation"
	"cfdclean/internal/server"
)

// The service load driver: measures what a cfdserved instance sustains
// under N concurrent streaming sessions. Each session gets its own
// generated order dataset (distinct seed), is created over the clean
// base, and then receives its dirty tuples as synchronous /apply batches
// from a dedicated client goroutine; the driver records per-request
// latency client-side and reports sustained batches/sec and tuple
// throughput with p50/p99/max latency over the whole run. With
// LoadConfig.BaseURL empty the driver spins up an in-process server on a
// loopback listener, so the numbers include the full HTTP round trip but
// no network.
//
// ReadFrac mixes streaming reads into the workload: each session's
// client interleaves CSV dumps and cursor-paginated violation walks
// with its writes so that reads make up the requested fraction of
// operations. The read side is reported separately (rows/s streamed,
// pages fetched, client-observed pinned-view lifetimes) and the write
// percentiles in the same row show what the reads cost the writer.

// LoadConfig parameterizes one load measurement.
type LoadConfig struct {
	// Sessions is the number of concurrent sessions (and client
	// goroutines). Default 1.
	Sessions int
	// Batches is the number of ΔD batches streamed per session; the
	// session's dirty tuples are spread evenly across them. Default 8.
	Batches int
	// BaseSize is the clean base database size per session. Default 800.
	BaseSize int
	// NoiseRate is the generator's perturbation rate; together with
	// BaseSize it determines total streamed tuples. Default 0.08.
	NoiseRate float64
	// Seed seeds the generator; session i uses Seed+i. Default 1.
	Seed int64
	// Workers bounds each session engine's intra-batch parallelism.
	// Default 1 (sessions are already concurrent with each other).
	Workers int
	// QueueDepth configures the in-process server. Default 32.
	QueueDepth int
	// BaseURL targets a running service ("http://host:port"); empty
	// starts an in-process server on a loopback listener.
	BaseURL string
	// DataDir, when non-empty, makes the in-process server durable
	// (WAL + snapshots under this directory), so the measurement
	// includes the full persistence path. Ignored with BaseURL set.
	DataDir string
	// Fsync is the durable server's WAL sync policy: "batch" (default),
	// "interval" or "off". Only meaningful with DataDir.
	Fsync string
	// ReadFrac is the fraction of client operations that are streaming
	// reads (alternating CSV dumps and paginated violation walks),
	// interleaved with each session's writes. 0 (the default) measures a
	// pure write workload; must be below 1 — some writes have to drive
	// the sessions forward.
	ReadFrac float64

	// SLOMaxP99ms, when > 0, turns the run into an SLO assertion: the
	// result carries an SLOReport and Pass is false when the measured
	// write p99 exceeds this bound or the error rate exceeds
	// SLOMaxErrorRate. The loadtest command exits non-zero on breach.
	SLOMaxP99ms float64
	// SLOMaxErrorRate is the error-batch fraction tolerated by the SLO
	// gate (errors / attempted batches). 0 — the default — means any
	// failed batch breaches.
	SLOMaxErrorRate float64

	// QuotaOps, when > 0, creates session 0 with this ops/sec quota
	// (server.WireQuota override) while the other sessions stay
	// unlimited: the limited tenant's clients see 429s and back off per
	// Retry-After, and the run demonstrates the others' latency holding
	// the SLO. Rate-limited rejections are retried, tallied in
	// LoadResult.RateLimited, and never counted as error batches.
	QuotaOps float64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Fsync == "" {
		c.Fsync = "batch"
	}
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.Batches <= 0 {
		c.Batches = 8
	}
	if c.BaseSize <= 0 {
		c.BaseSize = 800
	}
	if c.NoiseRate <= 0 {
		c.NoiseRate = 0.08
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	return c
}

// LoadResult reports one load measurement; all latencies are
// milliseconds of client-observed /apply round trips. ErrorBatches
// counts apply calls that failed (transport error, non-200 status, or a
// response that left violations) — they are excluded from the latency
// sample and the throughput numerator but no longer abort the run
// silently. Durable reports whether the measured server persisted every
// batch (DataDir set).
type LoadResult struct {
	Sessions     int     `json:"sessions"`
	Batches      int     `json:"batches_per_session"`
	MeanBatch    float64 `json:"mean_batch_tuples"`
	BaseSize     int     `json:"base_size"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	Durable      bool    `json:"durable"`
	Fsync        string  `json:"fsync,omitempty"`
	TotalBatches int     `json:"total_batches"`
	TotalTuples  int     `json:"total_tuples"`
	ErrorBatches int     `json:"error_batches"`
	// RateLimited counts 429 rate-limit rejections the clients absorbed
	// by backing off per Retry-After and retrying; the retried batches
	// still land, so these are not errors.
	RateLimited   int     `json:"rate_limited,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	TuplesPerSec  float64 `json:"tuples_per_sec"`
	P50ms         float64 `json:"p50_ms"`
	P99ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	// Stages breaks the server-side life of a batch into pipeline stages
	// (from the X-Stage-* response headers): queue wait, engine pass, and
	// persist (WAL append + fsync + ack). Client round-trip minus the
	// stage sum is HTTP/codec overhead.
	Stages *StageLatencies `json:"stages,omitempty"`
	// Reads summarizes the read side of a mixed workload (ReadFrac > 0):
	// absent on pure write runs.
	Reads *ReadStats `json:"reads,omitempty"`
	// SLO is the assertion verdict, present when SLOMaxP99ms was set.
	SLO *SLOReport `json:"slo,omitempty"`
}

// SLOReport is the verdict of an SLO-gated run: the targets it was held
// to, the measured error rate, and the list of breached assertions
// (empty when Pass).
type SLOReport struct {
	TargetP99ms  float64  `json:"target_p99_ms"`
	MaxErrorRate float64  `json:"max_error_rate"`
	ErrorRate    float64  `json:"error_rate"`
	Pass         bool     `json:"pass"`
	Breaches     []string `json:"breaches,omitempty"`
}

// ReadStats summarizes the streaming reads of a mixed workload run.
// DumpLatency is the client-observed life of one dump — request to last
// byte — which brackets the server-side pinned-view lifetime: the view
// is pinned before the first byte and released when the stream ends.
// PageLatency is the round trip of one violation page.
type ReadStats struct {
	ReadFrac     float64             `json:"read_frac"`
	Dumps        int                 `json:"dumps"`
	Pages        int                 `json:"violation_pages"`
	RowsStreamed int                 `json:"rows_streamed"`
	RowsPerSec   float64             `json:"rows_per_sec"`
	ErrorReads   int                 `json:"error_reads"`
	DumpLatency  *server.WireLatency `json:"dump_latency,omitempty"`
	PageLatency  *server.WireLatency `json:"page_latency,omitempty"`
}

// StageLatencies summarizes per-stage server-side timings across every
// successful batch of a run (same nearest-rank definition as the
// overall latency numbers).
type StageLatencies struct {
	Queue   *server.WireLatency `json:"queue,omitempty"`
	Engine  *server.WireLatency `json:"engine,omitempty"`
	Persist *server.WireLatency `json:"persist,omitempty"`
}

// RunLoad performs one measurement: create cfg.Sessions sessions, stream
// every session's batches concurrently, verify each response reports a
// Σ-satisfying state, tear the sessions down, and summarize. A batch
// whose apply fails (or leaves violations) is counted in
// LoadResult.ErrorBatches and excluded from the latency/throughput
// sample; RunLoad itself errors only when setup fails or no batch at
// all succeeds.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.ReadFrac < 0 {
		cfg.ReadFrac = 0
	}
	if cfg.ReadFrac >= 1 {
		return nil, fmt.Errorf("workload: ReadFrac %g must be below 1 (writes drive the sessions)", cfg.ReadFrac)
	}

	base := cfg.BaseURL
	if base == "" {
		sopts := server.Options{QueueDepth: cfg.QueueDepth}
		if cfg.DataDir != "" {
			policy, err := server.ParseFsyncPolicy(cfg.Fsync)
			if err != nil {
				return nil, err
			}
			sopts.DataDir = cfg.DataDir
			sopts.Fsync = policy
		}
		srv := server.New(sopts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Prepare every session's dataset and batches before the clock
	// starts; creation (base scan + store build) stays outside the
	// measured window, which times steady-state batch traffic only.
	type sessionLoad struct {
		name    string
		batches [][]server.WireTuple
	}
	loads := make([]sessionLoad, cfg.Sessions)
	for i := range loads {
		ds, err := gen.New(gen.Config{
			Size:      cfg.BaseSize,
			NoiseRate: cfg.NoiseRate,
			Seed:      cfg.Seed + int64(i),
			Weights:   true,
		})
		if err != nil {
			return nil, err
		}
		deltas, _ := ds.StreamBatches(cfg.Batches)
		name := fmt.Sprintf("load-%d", i)
		sl := sessionLoad{name: name}
		for _, delta := range deltas {
			wb := make([]server.WireTuple, len(delta))
			for j, t := range delta {
				wt := server.EncodeTuple(t)
				wt.ID = 0 // let the session assign arrival-order ids
				wb[j] = wt
			}
			sl.batches = append(sl.batches, wb)
		}
		loads[i] = sl

		var csvBuf, cfdBuf bytes.Buffer
		if err := relation.WriteCSV(ds.Opt, &csvBuf); err != nil {
			return nil, err
		}
		if err := cfd.Format(&cfdBuf, ds.CFDs); err != nil {
			return nil, err
		}
		cr := server.CreateRequest{
			Name:    name,
			CFDs:    cfdBuf.String(),
			BaseCSV: csvBuf.String(),
			Options: &server.WireOptions{Ordering: "linear", Workers: cfg.Workers},
		}
		if cfg.QuotaOps > 0 && i == 0 {
			// One deliberately throttled tenant; the rest stay unlimited so
			// the run shows their latency unaffected by its backoff.
			cr.Quota = &server.WireQuota{OpsPerSec: cfg.QuotaOps}
		}
		if _, err := postJSON(client, base+"/v1/sessions", cr, http.StatusCreated, nil); err != nil {
			return nil, fmt.Errorf("creating %s: %w", name, err)
		}
	}

	// Stream all sessions concurrently; one goroutine per session keeps
	// per-session ordering (the API contract) while sessions contend for
	// the service like independent tenants. A failed apply is counted
	// and the session moves on to its next batch — per-batch errors are
	// part of the report, not a silent abort.
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		lats        []time.Duration
		stageLats   [3][]time.Duration // queue, engine, persist
		okTuples    int
		errCount    int
		rateLimited int
		firstErr    error
		okBatches   int
		reads       readTally
	)
	stageHeaders := [3]string{"X-Stage-Queue-Us", "X-Stage-Engine-Us", "X-Stage-Persist-Us"}
	// readRatio turns ReadFrac (fraction of all operations) into reads
	// issued per write, accumulated as fractional credit so any fraction
	// mixes evenly across the run.
	readRatio := cfg.ReadFrac / (1 - cfg.ReadFrac)
	start := time.Now()
	for i := range loads {
		wg.Add(1)
		go func(sl sessionLoad) {
			defer wg.Done()
			var local []time.Duration
			var localStages [3][]time.Duration
			var localReads readTally
			localTuples, localErrs, localLimited := 0, 0, 0
			readCredit, readTurn := 0.0, 0
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			for _, wb := range sl.batches {
				var resp server.ApplyResponse
				// d is the accepted attempt's round trip: rate-limit backoff
				// is the throttled tenant's own waiting, not service
				// latency, so it stays out of the percentile sample.
				hdr, retries, d, err := applyWithBackoff(client, base+"/v1/sessions/"+sl.name+"/apply",
					server.ApplyRequest{Inserts: wb}, &resp)
				localLimited += retries
				if err == nil && !resp.Snapshot.Satisfied {
					err = fmt.Errorf("session %s: batch left violations", sl.name)
				}
				if err != nil {
					localErrs++
					fail(err)
					continue
				}
				local = append(local, d)
				localTuples += len(wb)
				for si, name := range stageHeaders {
					if us, perr := strconv.ParseInt(hdr.Get(name), 10, 64); perr == nil {
						localStages[si] = append(localStages[si], time.Duration(us)*time.Microsecond)
					}
				}
				// Interleave the read share: alternating streamed dumps
				// and paginated violation walks against the same session
				// the writes are advancing.
				for readCredit += readRatio; readCredit >= 1; readCredit-- {
					if err := localReads.one(client, base, sl.name, readTurn); err != nil {
						fail(err)
					}
					readTurn++
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			for si := range localStages {
				stageLats[si] = append(stageLats[si], localStages[si]...)
			}
			okTuples += localTuples
			okBatches += len(local)
			errCount += localErrs
			rateLimited += localLimited
			reads.merge(&localReads)
			mu.Unlock()
		}(loads[i])
	}
	wg.Wait()
	wall := time.Since(start)
	if okBatches == 0 && firstErr != nil {
		// Nothing succeeded: the summary would be all zeros, so surface
		// the underlying failure instead.
		return nil, firstErr
	}

	for _, sl := range loads {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+sl.name, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	total := len(lats)
	res := &LoadResult{
		Sessions:      cfg.Sessions,
		Batches:       cfg.Batches,
		BaseSize:      cfg.BaseSize,
		Gomaxprocs:    runtime.GOMAXPROCS(0),
		Durable:       cfg.BaseURL == "" && cfg.DataDir != "",
		TotalBatches:  total,
		TotalTuples:   okTuples,
		ErrorBatches:  errCount,
		RateLimited:   rateLimited,
		WallSeconds:   wall.Seconds(),
		BatchesPerSec: float64(total) / wall.Seconds(),
		TuplesPerSec:  float64(okTuples) / wall.Seconds(),
	}
	if res.Durable {
		res.Fsync = cfg.Fsync
	}
	// Same nearest-rank definition as the service's /v1/metrics.
	if sum := server.LatencySummary(lats); sum != nil {
		res.MeanBatch = float64(okTuples) / float64(total)
		res.P50ms = sum.P50ms
		res.P99ms = sum.P99ms
		res.MaxMs = sum.Maxms
	}
	if q, e, p := server.LatencySummary(stageLats[0]), server.LatencySummary(stageLats[1]), server.LatencySummary(stageLats[2]); q != nil || e != nil || p != nil {
		res.Stages = &StageLatencies{Queue: q, Engine: e, Persist: p}
	}
	if cfg.ReadFrac > 0 {
		res.Reads = &ReadStats{
			ReadFrac:     cfg.ReadFrac,
			Dumps:        reads.dumps,
			Pages:        reads.pages,
			RowsStreamed: reads.rows,
			RowsPerSec:   float64(reads.rows) / wall.Seconds(),
			ErrorReads:   reads.errs,
			DumpLatency:  server.LatencySummary(reads.dumpLats),
			PageLatency:  server.LatencySummary(reads.pageLats),
		}
	}
	if cfg.SLOMaxP99ms > 0 {
		res.SLO = evaluateSLO(cfg, res)
	}
	return res, nil
}

// evaluateSLO holds a finished run against its targets: write p99 at or
// under the bound, error-batch rate (errors over attempted batches) at
// or under the tolerance. Every breach is spelled out so a failing CI
// log says what broke, not just that something did.
func evaluateSLO(cfg LoadConfig, res *LoadResult) *SLOReport {
	rep := &SLOReport{TargetP99ms: cfg.SLOMaxP99ms, MaxErrorRate: cfg.SLOMaxErrorRate}
	if attempted := res.TotalBatches + res.ErrorBatches; attempted > 0 {
		rep.ErrorRate = float64(res.ErrorBatches) / float64(attempted)
	}
	if res.TotalBatches == 0 {
		rep.Breaches = append(rep.Breaches, "no batch succeeded")
	}
	if res.P99ms > rep.TargetP99ms {
		rep.Breaches = append(rep.Breaches,
			fmt.Sprintf("write p99 %.1fms exceeds target %.1fms", res.P99ms, rep.TargetP99ms))
	}
	if rep.ErrorRate > rep.MaxErrorRate {
		rep.Breaches = append(rep.Breaches,
			fmt.Sprintf("error rate %.4f (%d/%d batches) exceeds %.4f",
				rep.ErrorRate, res.ErrorBatches, res.TotalBatches+res.ErrorBatches, rep.MaxErrorRate))
	}
	rep.Pass = len(rep.Breaches) == 0
	return rep
}

// applyWithBackoff posts one apply batch, absorbing 429 rate-limit
// rejections by waiting out the server's advertised backoff —
// X-Retry-After-Ms when present (precise), Retry-After seconds
// otherwise — and retrying. retries reports how many 429s were
// absorbed; d is the accepted attempt's round trip alone, excluding
// rejected attempts and the sleeps between them. The retry budget is
// generous but bounded: a session whose quota can never admit the
// batch surfaces the 429 as an error instead of spinning forever.
func applyWithBackoff(client *http.Client, url string, ar server.ApplyRequest, out *server.ApplyResponse) (hdr http.Header, retries int, d time.Duration, err error) {
	const maxRetries = 100
	for {
		t0 := time.Now()
		hdr, status, err := postJSONStatus(client, url, ar, out)
		d = time.Since(t0)
		if err == nil && status == http.StatusOK {
			return hdr, retries, d, nil
		}
		if status != http.StatusTooManyRequests || retries >= maxRetries {
			return hdr, retries, d, err
		}
		retries++
		wait := 50 * time.Millisecond
		if ms, perr := strconv.ParseInt(hdr.Get("X-Retry-After-Ms"), 10, 64); perr == nil && ms > 0 {
			wait = time.Duration(ms) * time.Millisecond
		} else if sec, perr := strconv.Atoi(hdr.Get("Retry-After")); perr == nil && sec > 0 {
			wait = time.Duration(sec) * time.Second
		}
		time.Sleep(wait)
	}
}

// readTally accumulates one goroutine's (and then the run's) read-side
// observations.
type readTally struct {
	dumps, pages, rows, errs int
	dumpLats, pageLats       []time.Duration
}

func (r *readTally) merge(o *readTally) {
	r.dumps += o.dumps
	r.pages += o.pages
	r.rows += o.rows
	r.errs += o.errs
	r.dumpLats = append(r.dumpLats, o.dumpLats...)
	r.pageLats = append(r.pageLats, o.pageLats...)
}

// one performs a single read operation against a session, alternating
// by turn between a streamed CSV dump and a full cursor-paginated
// violation walk. Failed reads are tallied and returned (the caller
// records the first error) but never stop the workload.
func (r *readTally) one(client *http.Client, base, name string, turn int) error {
	if turn%2 == 0 {
		t0 := time.Now()
		rows, err := streamDump(client, base+"/v1/sessions/"+name+"/dump")
		if err != nil {
			r.errs++
			return fmt.Errorf("session %s: %w", name, err)
		}
		r.dumpLats = append(r.dumpLats, time.Since(t0))
		r.dumps++
		r.rows += rows
		return nil
	}
	pages, err := r.walkViolations(client, base, name)
	r.pages += pages
	if err != nil {
		r.errs++
		return fmt.Errorf("session %s: %w", name, err)
	}
	return nil
}

// streamDump fetches one CSV dump line by line — client-side buffering
// stays O(line), matching the server's O(page) — counting data rows and
// requiring the completion trailer that distinguishes a finished export
// from a truncated one.
func streamDump(client *http.Client, url string) (rows int, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if resp.Trailer.Get("X-Dump-Complete") != "true" {
		return 0, fmt.Errorf("GET %s: dump ended without completion trailer", url)
	}
	if lines > 0 {
		lines-- // header row
	}
	return lines, nil
}

// walkViolations pages through a session's violation listing following
// next_cursor to exhaustion — every page pinned to the version the
// first page was served at. Pages fetched before an error are counted.
func (r *readTally) walkViolations(client *http.Client, base, name string) (pages int, err error) {
	url := base + "/v1/sessions/" + name + "/violations?limit=64"
	for {
		var vr server.ViolationsResponse
		t0 := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			return pages, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return pages, err
		}
		if resp.StatusCode != http.StatusOK {
			return pages, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
		}
		if err := json.Unmarshal(body, &vr); err != nil {
			return pages, err
		}
		r.pageLats = append(r.pageLats, time.Since(t0))
		pages++
		if vr.NextCursor == "" {
			return pages, nil
		}
		url = base + "/v1/sessions/" + name + "/violations?cursor=" + vr.NextCursor
	}
}

// postJSON posts v, requires wantStatus, and decodes the body into out
// when non-nil; the response headers come back for callers that read
// the per-stage timing headers.
func postJSON(client *http.Client, url string, v any, wantStatus int, out any) (http.Header, error) {
	hdr, status, err := postJSONStatus(client, url, v, out)
	if err == nil && status != wantStatus {
		err = fmt.Errorf("POST %s: unexpected status %d", url, status)
	}
	return hdr, err
}

// postJSONStatus posts v and returns the response status alongside the
// headers; a non-2xx response is reported as an error carrying the body
// text, with the status still returned so callers can branch on 429. A
// 421 carrying X-Primary — a clustered node answering for a session it
// only replicates — is followed once to the named primary, which is the
// client half of the cluster's redirect contract.
func postJSONStatus(client *http.Client, url string, v any, out any) (http.Header, int, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, 0, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return nil, 0, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp.Header, resp.StatusCode, err
		}
		if resp.StatusCode == http.StatusMisdirectedRequest && attempt == 0 {
			if redirected := redirectToPrimary(url, resp.Header.Get("X-Primary")); redirected != "" {
				url = redirected
				continue
			}
		}
		if resp.StatusCode >= 300 {
			return resp.Header, resp.StatusCode, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
		}
		if out != nil {
			return resp.Header, resp.StatusCode, json.Unmarshal(body, out)
		}
		return resp.Header, resp.StatusCode, nil
	}
}

// redirectToPrimary rewrites rawURL's host to the primary address a 421
// response named; "" when there is nothing to follow.
func redirectToPrimary(rawURL, primary string) string {
	if primary == "" {
		return ""
	}
	u, err := neturl.Parse(rawURL)
	if err != nil {
		return ""
	}
	if strings.Contains(primary, "://") {
		p, err := neturl.Parse(primary)
		if err != nil {
			return ""
		}
		u.Scheme, u.Host = p.Scheme, p.Host
	} else {
		u.Host = primary
	}
	return u.String()
}
