package cfdclean_test

// Cross-module integration and property tests: the theorems the paper
// proves about its algorithms (termination, Repr |= Σ — Theorems 4.2 and
// 5.3) must hold on randomized workloads across the parameter space, and
// the two engines plus the framework loop must compose.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cfdclean"
	"cfdclean/workload"
)

// TestRepairSatisfiesSigmaProperty: for random (size, ρ, const-share,
// seed) configurations, both engines terminate and their output satisfies
// Σ — the paper's Theorems 4.2 and 5.3.
func TestRepairSatisfiesSigmaProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	rng := rand.New(rand.NewSource(31))
	f := func(sizeRaw, rhoRaw, shareRaw, seedRaw uint32) bool {
		size := 100 + int(sizeRaw%900)
		rho := float64(rhoRaw%12) / 100
		share := 0.2 + float64(shareRaw%7)/10
		ds, err := workload.Generate(workload.Config{
			Size: size, NoiseRate: rho, ConstShare: share,
			Seed: int64(seedRaw), Weights: seedRaw%2 == 0,
		})
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		br, err := cfdclean.BatchRepair(ds.Dirty, ds.Sigma, nil)
		if err != nil {
			t.Logf("batch: %v", err)
			return false
		}
		if !cfdclean.Satisfies(br.Repair, ds.Sigma) {
			t.Logf("batch repair violates Σ (size=%d rho=%v)", size, rho)
			return false
		}
		ir, err := cfdclean.Repair(ds.Dirty, ds.Sigma, &cfdclean.IncOptions{
			Ordering: cfdclean.Ordering(seedRaw % 3),
		})
		if err != nil {
			t.Logf("inc: %v", err)
			return false
		}
		if !cfdclean.Satisfies(ir.Repair, ds.Sigma) {
			t.Logf("inc repair violates Σ (size=%d rho=%v)", size, rho)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestRepairIdempotent: repairing a repair changes nothing (it already
// satisfies Σ).
func TestRepairIdempotent(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 600, NoiseRate: 0.05, Seed: 44, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := cfdclean.BatchRepair(ds.Dirty, ds.Sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cfdclean.BatchRepair(first.Repair, ds.Sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Changes != 0 {
		t.Fatalf("re-repair changed %d cells", second.Changes)
	}
}

// TestDiscoverThenRepair: mine Σ' from clean data, clean the dirty copy
// with the mined constraints — the end-to-end §9 discovery workflow.
func TestDiscoverThenRepair(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 1200, NoiseRate: 0.04, Seed: 15, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := cfdclean.Discover(ds.Opt, &cfdclean.DiscoveryOptions{
		MaxLHS: 1, MinSupport: 4,
		Attrs: []int{workload.AttrZip, workload.AttrCT, workload.AttrST,
			workload.AttrCTY, workload.AttrVAT},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("nothing mined")
	}
	var cfds []*cfdclean.CFD
	for _, r := range mined {
		cfds = append(cfds, r.CFD)
	}
	sigma := cfdclean.Normalize(cfds)
	if err := cfdclean.Satisfiable(sigma); err != nil {
		t.Fatalf("mined Σ unsatisfiable: %v", err)
	}
	res, err := cfdclean.BatchRepair(ds.Dirty, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfdclean.Satisfies(res.Repair, sigma) {
		t.Fatal("repair violates mined Σ")
	}
	q, err := cfdclean.EvaluateQuality(ds.Dirty, res.Repair, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	// Mined constraints only cover the geography attributes, so recall
	// is partial; what they do repair must be mostly right.
	if q.Changes > 0 && q.Precision < 0.5 {
		t.Fatalf("mined-constraint repair precision %.2f", q.Precision)
	}
}

// TestINDAcrossGeneratedRelations: an IND from the order table's item ids
// into a catalog built from the item pool; corrupting a child id is
// repaired back via the nearest-combination rule.
func TestINDAcrossGeneratedRelations(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 400, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	catalogSchema := cfdclean.MustSchema("catalog", "sku")
	catalog := cfdclean.NewRelation(catalogSchema)
	seen := map[string]bool{}
	for _, tp := range ds.Opt.Tuples() {
		id := tp.Vals[workload.AttrID].Str
		if !seen[id] {
			seen[id] = true
			if _, err := catalog.InsertRow(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	d, err := cfdclean.NewIND("fk", ds.Schema, []string{"id"}, catalogSchema, []string{"sku"})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cfdclean.INDViolations(ds.Opt, catalog, d)); n != 0 {
		t.Fatalf("clean data has %d IND violations", n)
	}
	// Corrupt one child id by a single character.
	child := ds.Opt.Clone()
	victim := child.Tuples()[0]
	orig := victim.Vals[workload.AttrID].Str
	corrupted := "z" + orig[1:]
	if _, err := child.Set(victim.ID, workload.AttrID, cfdclean.S(corrupted)); err != nil {
		t.Fatal(err)
	}
	if n := len(cfdclean.INDViolations(child, catalog, d)); n != 1 {
		t.Fatalf("want 1 violation, got %d", n)
	}
	res, err := cfdclean.RepairIND(child, catalog, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Child.Tuple(victim.ID).Vals[workload.AttrID].Str; got != orig {
		t.Fatalf("IND repair chose %q, want %q", got, orig)
	}
}

// TestFrameworkAcceptsThenHolds: an accepted repair's true inaccuracy
// rate respects the ε bound (with the oracle, acceptance is grounded in
// real comparisons, so this should essentially always hold).
func TestFrameworkAcceptsThenHolds(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Size: 2000, NoiseRate: 0.04, Seed: 12, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.05
	cl, err := cfdclean.NewCleaner(cfdclean.CleanerConfig{
		Sigma: ds.Sigma, Eps: eps, Delta: 0.9, MaxRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Clean(ds.Dirty, &cfdclean.Oracle{Opt: ds.Opt})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Skip("not accepted within budget (statistical)")
	}
	bad := 0
	for _, tp := range out.Repair.Tuples() {
		want := ds.Opt.Tuple(tp.ID)
		for a := range tp.Vals {
			if tp.Vals[a].String() != want.Vals[a].String() {
				bad++
				break
			}
		}
	}
	rate := float64(bad) / float64(out.Repair.Size())
	// Allow statistical slack: the test guarantees the rate at confidence
	// δ, not absolutely.
	if rate > 2*eps {
		t.Fatalf("accepted repair has inaccuracy rate %.4f ≫ ε = %v", rate, eps)
	}
}
