package cfdclean_test

// Benchmarks regenerating the paper's evaluation (one per figure, §7.2)
// plus ablations for the design choices DESIGN.md calls out. Figure
// benches run a representative point of the figure's sweep at bench
// scale; `go run ./cmd/experiments` regenerates the full sweeps and
// EXPERIMENTS.md records the paper-vs-measured series.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"cfdclean"
	"cfdclean/workload"
)

// benchSize keeps `go test -bench=.` in minutes; cmd/experiments scales
// to the paper's 60k–300k.
const benchSize = 2000

var dsCache = map[string]*workload.Dataset{}

func benchData(b *testing.B, size int, rho, constShare float64) *workload.Dataset {
	b.Helper()
	key := fmt.Sprintf("%d/%v/%v", size, rho, constShare)
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds, err := workload.Generate(workload.Config{
		Size: size, NoiseRate: rho, ConstShare: constShare, Seed: 1, Weights: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	dsCache[key] = ds
	return ds
}

func batchOnce(b *testing.B, ds *workload.Dataset, sigma []*cfdclean.NormalCFD) *cfdclean.BatchResult {
	b.Helper()
	res, err := cfdclean.BatchRepair(ds.Dirty, sigma, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func incOnce(b *testing.B, ds *workload.Dataset, ord cfdclean.Ordering) *cfdclean.IncResult {
	b.Helper()
	res, err := cfdclean.Repair(ds.Dirty, ds.Sigma, &cfdclean.IncOptions{Ordering: ord})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func reportQuality(b *testing.B, ds *workload.Dataset, repr *cfdclean.Relation) {
	b.Helper()
	q, err := cfdclean.EvaluateQuality(ds.Dirty, repr, ds.Opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(q.Precision*100, "precision%")
	b.ReportMetric(q.Recall*100, "recall%")
}

// BenchmarkFig08CFDvsFD — Fig. 8: BatchRepair with the full Σ versus its
// embedded FDs; the sub-bench metrics expose the accuracy gap.
func BenchmarkFig08CFDvsFD(b *testing.B) {
	ds := benchData(b, benchSize, 0.05, 0.5)
	b.Run("CFD", func(b *testing.B) {
		var last *cfdclean.BatchResult
		for i := 0; i < b.N; i++ {
			last = batchOnce(b, ds, ds.Sigma)
		}
		reportQuality(b, ds, last.Repair)
	})
	b.Run("FD", func(b *testing.B) {
		var last *cfdclean.BatchResult
		for i := 0; i < b.N; i++ {
			last = batchOnce(b, ds, ds.EmbeddedFDs())
		}
		reportQuality(b, ds, last.Repair)
	})
}

// BenchmarkFig09Fig10Accuracy — Figs. 9/10: precision and recall of all
// four algorithms at ρ = 5%.
func BenchmarkFig09Fig10Accuracy(b *testing.B) {
	ds := benchData(b, benchSize, 0.05, 0.5)
	b.Run("BatchRepair", func(b *testing.B) {
		var last *cfdclean.BatchResult
		for i := 0; i < b.N; i++ {
			last = batchOnce(b, ds, ds.Sigma)
		}
		reportQuality(b, ds, last.Repair)
	})
	for _, ord := range []cfdclean.Ordering{
		cfdclean.OrderByViolations, cfdclean.OrderByWeight, cfdclean.OrderLinear,
	} {
		b.Run(ord.String(), func(b *testing.B) {
			var last *cfdclean.IncResult
			for i := 0; i < b.N; i++ {
				last = incOnce(b, ds, ord)
			}
			reportQuality(b, ds, last.Repair)
		})
	}
}

// BenchmarkFig11BatchScale — Fig. 11: BatchRepair runtime as the database
// grows, ρ = 5%.
func BenchmarkFig11BatchScale(b *testing.B) {
	for _, n := range []int{benchSize, 2 * benchSize, 4 * benchSize} {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			ds := benchData(b, n, 0.05, 0.5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batchOnce(b, ds, ds.Sigma)
			}
		})
	}
}

// BenchmarkFig12Incremental — Fig. 12: repairing 10–70 inserted dirty
// tuples incrementally versus recleaning everything with BatchRepair.
func BenchmarkFig12Incremental(b *testing.B) {
	base := benchData(b, benchSize, 0, 0.5)
	pool, err := workload.Generate(workload.Config{
		Size: 100, NoiseRate: 1, Seed: 8, Weights: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 40, 70} {
		var delta []*cfdclean.Tuple
		for i, id := range pool.DirtyIDs {
			if i >= n {
				break
			}
			tp := pool.Dirty.Tuple(id).Clone()
			tp.ID = cfdclean.TupleID(1000000 + i)
			delta = append(delta, tp)
		}
		b.Run(fmt.Sprintf("IncRepair/insert=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfdclean.IncRepair(base.Opt, delta, base.Sigma, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("BatchRepair/insert=%d", n), func(b *testing.B) {
			combined := base.Opt.Clone()
			for _, tp := range delta {
				combined.MustInsert(tp.Clone())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfdclean.BatchRepair(combined, base.Sigma, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13RuntimeVsNoise — Fig. 13: runtime of BatchRepair and
// V-IncRepair as the noise rate grows.
func BenchmarkFig13RuntimeVsNoise(b *testing.B) {
	for _, rho := range []float64{0.01, 0.05, 0.10} {
		ds := benchData(b, benchSize, rho, 0.5)
		b.Run(fmt.Sprintf("BatchRepair/rho=%.0f%%", rho*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batchOnce(b, ds, ds.Sigma)
			}
		})
		b.Run(fmt.Sprintf("V-IncRepair/rho=%.0f%%", rho*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				incOnce(b, ds, cfdclean.OrderByViolations)
			}
		})
	}
}

// BenchmarkFig14ConstantShareAccuracy — Fig. 14: accuracy as the share of
// dirty tuples violating constant CFDs grows.
func BenchmarkFig14ConstantShareAccuracy(b *testing.B) {
	for _, share := range []float64{0.2, 0.5, 0.8} {
		ds := benchData(b, benchSize, 0.05, share)
		b.Run(fmt.Sprintf("BatchRepair/const=%.0f%%", share*100), func(b *testing.B) {
			var last *cfdclean.BatchResult
			for i := 0; i < b.N; i++ {
				last = batchOnce(b, ds, ds.Sigma)
			}
			reportQuality(b, ds, last.Repair)
		})
	}
}

// BenchmarkFig15ConstantShareTime — Fig. 15: runtime against the same
// constant-violation share sweep.
func BenchmarkFig15ConstantShareTime(b *testing.B) {
	for _, share := range []float64{0.2, 0.5, 0.8} {
		ds := benchData(b, benchSize, 0.05, share)
		b.Run(fmt.Sprintf("BatchRepair/const=%.0f%%", share*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batchOnce(b, ds, ds.Sigma)
			}
		})
		b.Run(fmt.Sprintf("V-IncRepair/const=%.0f%%", share*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				incOnce(b, ds, cfdclean.OrderByViolations)
			}
		})
	}
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationDepGraph — the §7.2 dependency-graph ordering of
// PICKNEXT on versus off.
func BenchmarkAblationDepGraph(b *testing.B) {
	ds := benchData(b, benchSize, 0.05, 0.5)
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var last *cfdclean.BatchResult
			for i := 0; i < b.N; i++ {
				var err error
				last, err = cfdclean.BatchRepair(ds.Dirty, ds.Sigma,
					&cfdclean.BatchOptions{NoDepGraph: off})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, ds, last.Repair)
		})
	}
}

// BenchmarkAblationSubsetK — TUPLERESOLVE's attribute-subset size k
// (§5.1: "for k = 1, 2 we are already able to obtain good results").
func BenchmarkAblationSubsetK(b *testing.B) {
	ds := benchData(b, benchSize, 0.05, 0.5)
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var last *cfdclean.IncResult
			for i := 0; i < b.N; i++ {
				var err error
				last, err = cfdclean.Repair(ds.Dirty, ds.Sigma, &cfdclean.IncOptions{
					Ordering: cfdclean.OrderByViolations, K: k,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportQuality(b, ds, last.Repair)
		})
	}
}

// BenchmarkAblationWeights — the cost model with the §7.1 weight
// protocol versus all-ones weights (§3.2 remark 1).
func BenchmarkAblationWeights(b *testing.B) {
	for _, weighted := range []bool{true, false} {
		name := "weighted"
		if !weighted {
			name = "unweighted"
		}
		b.Run(name, func(b *testing.B) {
			ds, err := workload.Generate(workload.Config{
				Size: benchSize, NoiseRate: 0.05, Seed: 1, Weights: weighted,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var last *cfdclean.BatchResult
			for i := 0; i < b.N; i++ {
				last = batchOnce(b, ds, ds.Sigma)
			}
			reportQuality(b, ds, last.Repair)
		})
	}
}

// BenchmarkDetect — violation detection throughput (the SQL-based
// detection of [6] that the repairing loop leans on).
func BenchmarkDetect(b *testing.B) {
	ds := benchData(b, benchSize, 0.05, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfdclean.VioCounts(ds.Dirty, ds.Sigma)
	}
}

// BenchmarkDetectParallel — partition-parallel whole-database detection
// versus the sequential path on the same instance. The two sub-benches
// return bit-identical violation slices (see internal/cfd's determinism
// test); "par" shards index buckets across runtime.NumCPU() workers.
func BenchmarkDetectParallel(b *testing.B) {
	ds := benchData(b, 4*benchSize, 0.05, 0.5)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfdclean.Detect(ds.Dirty, ds.Sigma, bc.workers)
			}
		})
	}
}

// BenchmarkBatchRepair measures BATCHREPAIR end to end under the
// component-parallel schedule: the violation graph's connected
// components are repaired concurrently across the configured workers
// and merged in canonical order. Every sub-bench returns byte-identical
// repairs (enforced by the property battery); only wall-clock may
// differ. workers=0 is the default (all cores).
func BenchmarkBatchRepair(b *testing.B) {
	ds := benchData(b, 2*benchSize, 0.05, 0.5)
	for _, w := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var last *cfdclean.BatchResult
			for i := 0; i < b.N; i++ {
				var err error
				last, err = cfdclean.BatchRepair(ds.Dirty, ds.Sigma, &cfdclean.BatchOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Resolutions), "resolutions")
			reportQuality(b, ds, last.Repair)
		})
	}
}

// BenchmarkIncRepairDelta measures the per-batch cost of streaming a
// fixed-size ΔD into an open Session while the base database D grows
// across sub-benches. Under delta-maintained violation state the cost
// must track |ΔD|, not |D|: the delta=32 rows should stay near-flat as D
// quadruples, while the delta=128 row costs ~4x the delta=32 row at
// equal D. The session (store build, base indexing) is constructed
// outside the timer; each iteration pays only ApplyDelta.
func BenchmarkIncRepairDelta(b *testing.B) {
	for _, cfg := range []struct{ base, delta, workers int }{
		{benchSize, 32, 1},
		{2 * benchSize, 32, 1},
		{4 * benchSize, 32, 1},
		{benchSize, 128, 1},
		{benchSize, 128, 4},
	} {
		b.Run(fmt.Sprintf("base=%d/delta=%d/workers=%d", cfg.base, cfg.delta, cfg.workers), func(b *testing.B) {
			// ρ = 10% keeps the dirty pool ≥ 128 at every base size; the
			// session's base is ds.Opt, which is independent of ρ.
			ds := benchData(b, cfg.base, 0.10, 0.5)
			deltas, _ := ds.StreamBatches(1)
			dirty := 0
			if len(deltas) > 0 {
				dirty = len(deltas[0])
			}
			if dirty < cfg.delta {
				b.Skipf("only %d dirty tuples at this size", dirty)
			}
			batch := deltas[0][:cfg.delta]
			sess, err := cfdclean.NewSession(ds.Opt, ds.Sigma,
				&cfdclean.IncOptions{Workers: cfg.workers})
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				push := make([]*cfdclean.Tuple, len(batch))
				for j, t := range batch {
					c := t.Clone()
					c.ID = 0
					push[j] = c
				}
				res, err := sess.ApplyDelta(push)
				if err != nil {
					b.Fatal(err)
				}
				// Undo the batch outside the timer so |D| stays fixed
				// across iterations (otherwise ns/op would drift with
				// b.N). Deletions never introduce violations (§3.3) and
				// the store maintains exactly under them, so the session
				// returns to its pre-batch state.
				b.StopTimer()
				for _, rt := range res.Inserted {
					sess.Current().Delete(rt.ID)
				}
				b.StartTimer()
			}
			b.StopTimer()
			if !sess.Satisfied() {
				b.Fatal("session violates Σ after stream")
			}
			b.ReportMetric(float64(len(batch)), "Δtuples")
		})
	}
}

// BenchmarkStreamSession measures the whole online scenario end to end:
// open a session over the clean base, stream every dirty tuple in
// batches, close. One iteration is one complete stream.
func BenchmarkStreamSession(b *testing.B) {
	ds := benchData(b, benchSize, 0.05, 0.5)
	deltas, _ := ds.StreamBatches(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := cfdclean.NewSession(ds.Opt, ds.Sigma,
			&cfdclean.IncOptions{Ordering: cfdclean.OrderByViolations})
		if err != nil {
			b.Fatal(err)
		}
		for _, delta := range deltas {
			if _, err := sess.ApplyDelta(delta); err != nil {
				b.Fatal(err)
			}
		}
		if !sess.Satisfied() {
			b.Fatal("stream left violations")
		}
		sess.Close()
	}
}
