// Accuracy runs the full framework loop of the paper's Fig. 3: repair a
// dirty database, draw a stratified sample, let a user (here: an oracle
// with access to the ground truth) inspect it, test the repair's
// inaccuracy rate against the bound ε at confidence δ (§6), and feed the
// user's corrections into the next round until the repair is accepted.
//
// Run with: go run ./examples/accuracy
package main

import (
	"fmt"
	"log"

	"cfdclean"
	"cfdclean/workload"
)

func main() {
	ds, err := workload.Generate(workload.Config{
		Size: 8000, NoiseRate: 0.06, Seed: 5, Weights: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dirty database: %d tuples, %d noisy cells in %d tuples\n",
		ds.Dirty.Size(), ds.NoisyCells, len(ds.DirtyIDs))

	const (
		eps   = 0.02 // accept when < 2% of tuples are inaccurate...
		delta = 0.95 // ...at 95% confidence
	)
	cleaner, err := cfdclean.NewCleaner(cfdclean.CleanerConfig{
		Sigma: ds.Sigma,
		Eps:   eps,
		Delta: delta,
		Mode:  cfdclean.ModeBatch,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The oracle plays the domain expert of §6: it flags sampled tuples
	// that differ from the correct database and supplies the fixes.
	oracle := &cfdclean.Oracle{Opt: ds.Opt}
	out, err := cleaner.Clean(ds.Dirty, oracle)
	if err != nil {
		log.Fatal(err)
	}

	for i, r := range out.Rounds {
		verdict := "rejected"
		if r.Report.Accepted {
			verdict = "accepted"
		}
		fmt.Printf("round %d: repaired %d cells; sample of %d tuples, %d flagged "+
			"(p̂ = %.4f, z = %.2f vs -z_α = %.2f) → %s",
			i+1, r.RepairChanges, r.Report.SampleSize, len(r.Report.Inaccurate),
			r.Report.PHat, r.Report.Z, -r.Report.ZAlpha, verdict)
		if r.Corrections > 0 {
			fmt.Printf("; user corrected %d tuples", r.Corrections)
		}
		fmt.Println()
	}

	if !out.Accepted {
		fmt.Println("not accepted within the round budget")
		return
	}

	// With the ground truth at hand we can check what the statistical
	// test promised: the true inaccuracy rate of the accepted repair.
	bad := 0
	for _, t := range out.Repair.Tuples() {
		want := ds.Opt.Tuple(t.ID)
		for a := range t.Vals {
			if t.Vals[a].String() != want.Vals[a].String() {
				bad++
				break
			}
		}
	}
	rate := float64(bad) / float64(out.Repair.Size())
	fmt.Printf("\naccepted repair: true inaccuracy rate %.4f (bound ε = %.2f)\n", rate, eps)
	q, err := cfdclean.EvaluateQuality(ds.Dirty, out.Repair, ds.Opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality: %v\n", q)
}
