// Quickstart reproduces the paper's running example (Fig. 1): the order
// relation with tuples t1–t4, CFDs ϕ1 and ϕ2, violation detection, and an
// automatic repair that moves t3 and t4 to (NYC, NY) as Example 1.1
// suggests.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"cfdclean"
)

func main() {
	s := cfdclean.MustSchema("order",
		"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip")

	// The four tuples of Fig. 1(a).
	d := cfdclean.NewRelation(s)
	for _, row := range [][]string{
		{"a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"},
		{"a23", "H. Porter", "17.99", "610", "3456789", "Spruce", "PHI", "PA", "19014"},
		{"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "PHI", "PA", "10012"},
		{"a89", "Snow White", "18.99", "212", "5674322", "Broad", "PHI", "PA", "10012"},
	} {
		if _, err := d.InsertRow(row...); err != nil {
			log.Fatal(err)
		}
	}

	// The CFDs of Fig. 1(b). ϕ1 extends the FD [AC,PN] → [STR,CT,ST]
	// with pattern rows binding area codes to cities; ϕ2 binds zip codes.
	w := cfdclean.Wildcard
	c := cfdclean.Const
	phi1, err := cfdclean.NewCFD("phi1", s,
		[]string{"AC", "PN"}, []string{"STR", "CT", "ST"},
		[]cfdclean.PatternCell{w, w, w, w, w}, // the embedded FD fd1
		[]cfdclean.PatternCell{c("212"), w, w, c("NYC"), c("NY")},
		[]cfdclean.PatternCell{c("610"), w, w, c("PHI"), c("PA")},
		[]cfdclean.PatternCell{c("215"), w, w, c("PHI"), c("PA")},
	)
	if err != nil {
		log.Fatal(err)
	}
	phi2, err := cfdclean.NewCFD("phi2", s,
		[]string{"zip"}, []string{"CT", "ST"},
		[]cfdclean.PatternCell{c("10012"), c("NYC"), c("NY")},
		[]cfdclean.PatternCell{c("19014"), c("PHI"), c("PA")},
	)
	if err != nil {
		log.Fatal(err)
	}
	sigma := cfdclean.Normalize([]*cfdclean.CFD{phi1, phi2})

	fmt.Println("== input (Fig. 1(a)) ==")
	cfdclean.WriteCSV(d, os.Stdout)

	// Detection: the data satisfies the traditional FDs but violates the
	// CFDs — t3 and t4 have area code 212 (and zip 10012) yet claim to be
	// in Philadelphia.
	fmt.Println("\n== violations ==")
	for _, v := range cfdclean.Violations(d, sigma, 0) {
		if v.With == 0 {
			fmt.Printf("tuple %d violates %s\n", v.T, v.N)
		} else {
			fmt.Printf("tuple %d violates %s with tuple %d\n", v.T, v.N, v.With)
		}
	}

	// Automatic repair (BATCHREPAIR, §4).
	res, err := cfdclean.BatchRepair(d, sigma, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== repair (%d cells changed, cost %.2f) ==\n", res.Changes, res.Cost)
	cfdclean.WriteCSV(res.Repair, os.Stdout)

	if !cfdclean.Satisfies(res.Repair, sigma) {
		log.Fatal("repair does not satisfy Σ")
	}
	fmt.Println("\nrepair satisfies Σ")
}
