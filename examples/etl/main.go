// ETL is a file-based cleaning pipeline: generate a noisy sales feed (or
// point the flags at your own files), load the CSV and the CFD file,
// detect violations, repair, and write the cleaned CSV back out — the
// workflow a data engineer would wrap around the library.
//
// Run with: go run ./examples/etl [-in dirty.csv -cfds cfds.txt -out clean.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cfdclean"
	"cfdclean/workload"
)

func main() {
	in := flag.String("in", "", "input CSV (default: generate a demo feed)")
	cfdPath := flag.String("cfds", "", "CFD file (required with -in)")
	out := flag.String("out", "", "output CSV (default: <in>.cleaned.csv)")
	flag.Parse()

	if *in == "" {
		dir, err := os.MkdirTemp("", "cfdclean-etl")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no -in given; generating a demo feed under %s\n", dir)
		if err := generateDemo(dir); err != nil {
			log.Fatal(err)
		}
		*in = filepath.Join(dir, "feed.csv")
		*cfdPath = filepath.Join(dir, "cfds.txt")
	}
	if *cfdPath == "" {
		log.Fatal("etl: -cfds is required with -in")
	}
	if *out == "" {
		*out = *in + ".cleaned.csv"
	}

	// Load.
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := cfdclean.ReadCSV("feed", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	cf, err := os.Open(*cfdPath)
	if err != nil {
		log.Fatal(err)
	}
	cfds, err := cfdclean.ParseCFDs(rel.Schema(), cf)
	cf.Close()
	if err != nil {
		log.Fatal(err)
	}
	sigma := cfdclean.Normalize(cfds)
	if err := cfdclean.Satisfiable(sigma); err != nil {
		log.Fatalf("constraints are unsatisfiable: %v", err)
	}

	// Detect.
	counts := cfdclean.VioCounts(rel, sigma)
	fmt.Printf("loaded %d tuples, %d CFDs; %d tuples violate Σ\n",
		rel.Size(), len(cfds), len(counts))
	if len(counts) == 0 {
		fmt.Println("feed is clean; nothing to do")
		return
	}

	// Repair with the incremental engine (§5.3): keep the consistent
	// core, re-insert the violating tuples one at a time.
	res, err := cfdclean.Repair(rel, sigma, &cfdclean.IncOptions{
		Ordering: cfdclean.OrderByViolations,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired: %d cells changed, cost %.2f\n", res.Changes, res.Cost)
	if !cfdclean.Satisfies(res.Repair, sigma) {
		log.Fatal("internal error: repair violates Σ")
	}

	// Write.
	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := cfdclean.WriteCSV(res.Repair, of); err != nil {
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote cleaned feed to %s\n", *out)
}

// generateDemo writes a 3,000-tuple noisy feed plus its CFD file.
func generateDemo(dir string) error {
	ds, err := workload.Generate(workload.Config{
		Size: 3000, NoiseRate: 0.05, Seed: 21, Weights: true,
	})
	if err != nil {
		return err
	}
	feed, err := os.Create(filepath.Join(dir, "feed.csv"))
	if err != nil {
		return err
	}
	if err := cfdclean.WriteCSV(ds.Dirty, feed); err != nil {
		feed.Close()
		return err
	}
	if err := feed.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, "cfds.txt"))
	if err != nil {
		return err
	}
	if err := cfdclean.FormatCFDs(cf, ds.CFDs); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
