// Service demonstrates cfdserved from the client side: it starts the
// cleaning service in-process on a loopback port, then talks to it over
// plain HTTP/JSON exactly as a remote tenant would — create a named
// session from a CSV base plus a CFD file, subscribe to the live event
// stream, push dirty ΔD batches, and read maintained violation state.
//
// Run with: go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"cfdclean"
	"cfdclean/internal/server"
	"cfdclean/workload"
)

func main() {
	// --- Server side: one call in a real deployment this is `cfdserved`.
	svc := server.New(server.Options{QueueDepth: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
		hs.Shutdown(ctx)
	}()
	fmt.Printf("cfdserved listening on %s\n\n", base)

	// --- Client side: everything below is plain HTTP.
	ds, err := workload.Generate(workload.Config{
		Size: 2000, NoiseRate: 0.06, Seed: 11, Weights: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	deltas, _ := ds.StreamBatches(6)

	var baseCSV, cfdsTxt bytes.Buffer
	if err := cfdclean.WriteCSV(ds.Opt, &baseCSV); err != nil {
		log.Fatal(err)
	}
	if err := cfdclean.FormatCFDs(&cfdsTxt, ds.CFDs); err != nil {
		log.Fatal(err)
	}

	var created server.CreateResponse
	post(base+"/v1/sessions", server.CreateRequest{
		Name:    "orders",
		CFDs:    cfdsTxt.String(),
		BaseCSV: baseCSV.String(),
		Options: &server.WireOptions{Ordering: "vio"},
	}, http.StatusCreated, &created)
	fmt.Printf("session %q created: %d tuples, %d rules, violations=%d\n\n",
		created.Name, created.Snapshot.Size, created.Rules, created.Snapshot.Violations)

	// Live notifications: one SSE event per applied batch, carrying the
	// repaired (dirty) cells and the post-batch violation count. Wait
	// for the server's stream-open confirmation before applying, or the
	// first batch's event could be broadcast to zero subscribers.
	events := make(chan server.Event, 16)
	subscribed := make(chan struct{})
	go streamEvents(base+"/v1/sessions/orders/events", subscribed, events)
	select {
	case <-subscribed:
	case <-time.After(10 * time.Second):
		log.Fatal("event stream never opened")
	}

	for i, delta := range deltas {
		req := server.ApplyRequest{Inserts: make([]server.WireTuple, len(delta))}
		for j, t := range delta {
			wt := server.EncodeTuple(t)
			wt.ID = 0
			req.Inserts[j] = wt
		}
		var ar server.ApplyResponse
		post(base+"/v1/sessions/orders/apply", req, http.StatusOK, &ar)

		select {
		case ev := <-events:
			fmt.Printf("batch %d: %3d tuples  %2d dirty cells repaired  violations now %d  (size %d, cost %.2f)\n",
				i, ev.Inserted, len(ev.Dirty), ev.Snapshot.Violations, ev.Snapshot.Size, ar.Cost)
		case <-time.After(10 * time.Second):
			log.Fatal("no event for applied batch")
		}
	}

	var vr server.ViolationsResponse
	get(base+"/v1/sessions/orders/violations?limit=5", &vr)
	var info server.SessionInfo
	get(base+"/v1/sessions/orders", &info)
	fmt.Printf("\nfinal: %d tuples, %d batches, %d cells changed, open violations: %d\n",
		info.Snapshot.Size, info.Snapshot.Batches, info.Snapshot.Changes, vr.Total)

	var mr server.MetricsResponse
	get(base+"/v1/metrics", &mr)
	if mr.Latency != nil {
		fmt.Printf("service: %d passes, p50 %.0fms, p99 %.0fms\n",
			mr.Passes, mr.Latency.P50ms, mr.Latency.P99ms)
	}
}

func post(url string, body any, want int, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatal(err)
	}
}

// streamEvents decodes the session's SSE stream into Events, closing
// subscribed once the server confirms the stream is live (the ": stream
// open" comment the server writes on subscription).
func streamEvents(url string, subscribed chan<- struct{}, out chan<- server.Event) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	opened := false
	for sc.Scan() {
		line := sc.Text()
		if !opened && strings.HasPrefix(line, ":") {
			opened = true
			close(subscribed)
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			log.Fatal(err)
		}
		out <- ev
	}
}
