// Incremental demonstrates the paper's §5 scenario: a clean sales
// database receives batches of new orders, some of them dirty, and
// INCREPAIR cleans each batch on insertion without ever touching the
// trusted base. The three tuple orderings of §5.2 are compared on the
// same stream.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"cfdclean"
	"cfdclean/workload"
)

func main() {
	// A clean base of 5,000 orders and a separate pool whose dirty
	// versions serve as the incoming (noisy) stream.
	base, err := workload.Generate(workload.Config{Size: 5000, Seed: 11, Weights: true})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.Generate(workload.Config{
		Size: 300, NoiseRate: 0.4, Seed: 11, Weights: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var delta []*cfdclean.Tuple
	var truth []*cfdclean.Tuple
	for i, id := range stream.DirtyIDs {
		dirty := stream.Dirty.Tuple(id).Clone()
		clean := stream.Opt.Tuple(id).Clone()
		dirty.ID = cfdclean.TupleID(1_000_000 + i)
		clean.ID = dirty.ID
		delta = append(delta, dirty)
		truth = append(truth, clean)
	}
	fmt.Printf("clean base: %d tuples; incoming batch: %d dirty tuples\n\n",
		base.Opt.Size(), len(delta))

	for _, ord := range []cfdclean.Ordering{
		cfdclean.OrderLinear, cfdclean.OrderByViolations, cfdclean.OrderByWeight,
	} {
		res, err := cfdclean.IncRepair(base.Opt, delta, base.Sigma,
			&cfdclean.IncOptions{Ordering: ord})
		if err != nil {
			log.Fatal(err)
		}
		if !cfdclean.Satisfies(res.Repair, base.Sigma) {
			log.Fatalf("%v: repair violates Σ", ord)
		}
		correct := 0
		for i, rt := range res.Inserted {
			want := findTruth(truth, rt.ID)
			same := true
			for a := range rt.Vals {
				if rt.Vals[a].String() != want.Vals[a].String() {
					same = false
					break
				}
			}
			if same {
				correct++
			}
			_ = i
		}
		fmt.Printf("%-12s  changed %3d cells (cost %6.2f), %3d/%d tuples repaired to ground truth\n",
			ord, res.Changes, res.Cost, correct, len(delta))
	}

	// The base is trusted: whatever the ordering, not a single cell of
	// the original database may change.
	res, err := cfdclean.IncRepair(base.Opt, delta, base.Sigma, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range base.Opt.Tuples() {
		got := res.Repair.Tuple(t.ID)
		for a := range t.Vals {
			if got.Vals[a].String() != t.Vals[a].String() {
				log.Fatalf("trusted tuple %d modified", t.ID)
			}
		}
	}
	fmt.Println("\ntrusted base unchanged by all runs")
}

func findTruth(truth []*cfdclean.Tuple, id cfdclean.TupleID) *cfdclean.Tuple {
	for _, t := range truth {
		if t.ID == id {
			return t
		}
	}
	panic("missing truth tuple")
}
