// Streaming demonstrates the Session/ApplyDelta API: the paper's §5
// online scenario run as a long-lived cleaner. A session is opened once
// over a clean order database; batches of incoming orders — some dirty —
// are then pushed through ApplyDelta, and each batch is repaired against
// delta-maintained violation state: the base is never rescanned, no
// detector is rebuilt between batches, and the result stays consistent
// with Σ after every push.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"cfdclean"
	"cfdclean/workload"
)

func main() {
	// One dataset provides both sides of the stream: the clean Opt is
	// the trusted base, and the dirty versions of the perturbed tuples
	// arrive as insertion batches with ground truth attached.
	ds, err := workload.Generate(workload.Config{
		Size: 5000, NoiseRate: 0.06, Seed: 7, Weights: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	deltas, truth := ds.StreamBatches(8)

	start := time.Now()
	sess, err := cfdclean.NewSession(ds.Opt, ds.Sigma,
		&cfdclean.IncOptions{Ordering: cfdclean.OrderByViolations})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("session opened over %d clean tuples in %v; streaming %d batches\n\n",
		ds.Opt.Size(), time.Since(start).Round(time.Microsecond), len(deltas))

	totalCorrect, totalTuples := 0, 0
	for i, delta := range deltas {
		t0 := time.Now()
		res, err := sess.ApplyDelta(delta)
		if err != nil {
			log.Fatal(err)
		}
		if !sess.Satisfied() {
			log.Fatalf("batch %d: session relation violates Σ", i)
		}
		correct := 0
		for _, rt := range res.Inserted {
			if sameVals(rt, findTruth(truth[i], rt.ID)) {
				correct++
			}
		}
		totalCorrect += correct
		totalTuples += len(delta)
		fmt.Printf("batch %d: %3d tuples in %8v  cost %6.2f  changed %3d cells  %d/%d to ground truth\n",
			i, len(delta), time.Since(t0).Round(time.Microsecond), res.Cost, res.Changes, correct, len(delta))
	}

	batches, tuples, cost, changes := sess.Stats()
	fmt.Printf("\nstream done: %d batches, %d tuples, total cost %.2f, %d cells changed, %d/%d repaired to ground truth\n",
		batches, tuples, cost, changes, totalCorrect, totalTuples)
	fmt.Printf("final database: %d tuples, satisfies Σ: %v\n",
		sess.Current().Size(), cfdclean.Satisfies(sess.Current(), ds.Sigma))
}

func sameVals(a, b *cfdclean.Tuple) bool {
	if b == nil {
		return false
	}
	for i := range a.Vals {
		if a.Vals[i].String() != b.Vals[i].String() {
			return false
		}
	}
	return true
}

func findTruth(batch []*cfdclean.Tuple, id cfdclean.TupleID) *cfdclean.Tuple {
	for _, t := range batch {
		if t.ID == id {
			return t
		}
	}
	return nil
}
